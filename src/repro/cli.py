"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro info
    python -m repro list
    python -m repro estimate gsm.decode [--speculation 1.15] [--json]
    python -m repro table2 [--max-instructions N] [--json]
    python -m repro sweep bitcount --points 1.0,1.1,1.15,1.2

``info`` prints the processor operating point, ``estimate`` runs the full
train+estimate flow for one benchmark, ``table2`` regenerates the paper's
Table 2 across the suite, and ``sweep`` maps error rate and net
performance over speculation ratios.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import ErrorRateEstimator, ProcessorModel
from repro.workloads import list_workloads, load_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Program error-rate estimation for timing-speculative "
            "processors (DAC 2019 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the processor operating point")
    sub.add_parser("list", help="list available benchmarks")

    est = sub.add_parser("estimate", help="estimate one benchmark")
    est.add_argument("benchmark", choices=list_workloads())
    est.add_argument("--speculation", type=float, default=1.15)
    est.add_argument("--max-instructions", type=int, default=None)
    est.add_argument("--json", action="store_true")

    tab = sub.add_parser("table2", help="regenerate Table 2")
    tab.add_argument("--max-instructions", type=int, default=None)
    tab.add_argument("--json", action="store_true")

    swp = sub.add_parser("sweep", help="speculation-ratio sweep")
    swp.add_argument("benchmark", choices=list_workloads())
    swp.add_argument(
        "--points", default="1.00,1.05,1.10,1.15,1.20,1.25",
        help="comma-separated speculation ratios",
    )
    swp.add_argument("--max-instructions", type=int, default=300_000)
    return parser


def _estimate_one(processor, name, max_instructions=None):
    workload = load_workload(name)
    estimator = ErrorRateEstimator(processor)
    artifacts = estimator.train(
        workload.program,
        setup=workload.setup(workload.dataset("small")),
        max_instructions=workload.budget("small"),
    )
    return estimator.estimate(
        workload.program,
        artifacts,
        setup=workload.setup(workload.dataset("large")),
        max_instructions=max_instructions or workload.budget("large"),
    )


def _cmd_info(args, out) -> int:
    processor = ProcessorModel()
    for key, value in processor.describe().items():
        val = f"{value:.1f}" if isinstance(value, float) else value
        out.write(f"{key:26s} {val}\n")
    return 0


def _cmd_list(args, out) -> int:
    for name in list_workloads():
        out.write(name + "\n")
    return 0


def _cmd_estimate(args, out) -> int:
    processor = ProcessorModel(speculation=args.speculation)
    report = _estimate_one(processor, args.benchmark, args.max_instructions)
    if args.json:
        out.write(json.dumps(report.table_row(), indent=2) + "\n")
    else:
        out.write(str(report) + "\n")
        perf = processor.performance.improvement_percent(
            report.error_rate_mean / 100.0
        )
        out.write(f"net performance vs baseline: {perf:+.2f}%\n")
    return 0


def _cmd_table2(args, out) -> int:
    processor = ProcessorModel()
    rows = []
    for name in list_workloads():
        report = _estimate_one(processor, name, args.max_instructions)
        rows.append(report.table_row())
        if not args.json:
            out.write(str(report) + "\n")
    if args.json:
        out.write(json.dumps(rows, indent=2) + "\n")
    return 0


def _cmd_sweep(args, out) -> int:
    points = [float(p) for p in args.points.split(",") if p.strip()]
    if not points:
        out.write("no sweep points given\n")
        return 2
    base = ProcessorModel()
    shared = {
        "datapath_model": base.datapath_model,
        "ssta": base.ssta,
        "control_analyzer": base.control_analyzer,
        "data_analyzer": base.data_analyzer,
    }
    out.write(f"{'spec':>6s} {'MHz':>7s} {'ER%':>8s} {'perf%':>8s}\n")
    for speculation in points:
        processor = ProcessorModel(
            pipeline=base.pipeline, library=base.library,
            speculation=speculation,
        )
        processor.__dict__.update(shared)
        report = _estimate_one(
            processor, args.benchmark, args.max_instructions
        )
        perf = processor.performance.improvement_percent(
            report.error_rate_mean / 100.0
        )
        out.write(
            f"{speculation:6.2f} {processor.working_frequency_mhz:7.0f} "
            f"{report.error_rate_mean:8.3f} {perf:+8.2f}\n"
        )
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "list": _cmd_list,
    "estimate": _cmd_estimate,
    "table2": _cmd_table2,
    "sweep": _cmd_sweep,
}


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
