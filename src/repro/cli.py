"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro info
    python -m repro list
    python -m repro estimate gsm.decode [--speculation 1.15] [--json]
    python -m repro table2 [--workers 4] [--max-instructions N] [--json]
    python -m repro sweep bitcount --points 1.0,1.1,1.15,1.2
    python -m repro batch bitcount dijkstra --workers 2 --cache-dir .cache
    python -m repro pipeline inspect [--backend dta=reference] [--cache-dir D]
    python -m repro montecarlo bitcount --chips 16 --window-workers 4
    python -m repro serve --port 8731 --state-dir .repro-service
    python -m repro submit bitcount --speculation 1.15 --json

``info`` prints the processor operating point, ``estimate`` runs the full
train+estimate flow for one benchmark, ``table2`` regenerates the paper's
Table 2 across the suite, ``sweep`` maps error rate and net performance
over speculation ratios, ``batch`` executes an arbitrary set of
(workload × operating point) jobs, and ``montecarlo`` measures the
brute-force per-chip error-rate distribution the framework is validated
against.  ``table2``, ``sweep``, and ``batch`` all run on the batch
estimation engine: ``--workers N`` fans the independent jobs out across
a process pool, ``--window-workers N`` fans the per-window analysis
*inside* each job out across the window pool (pinned to 1 automatically
when the engine itself runs parallel), and ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable) enables the content-addressed
artifact cache so warm re-runs skip every training phase.

``serve`` runs the estimation job server (:mod:`repro.service`) and
``submit`` posts one job to it over HTTP; both speak the versioned
:mod:`repro.api` request/response schema, which is also the only way
this module constructs estimation requests.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import api
from repro.core import ProcessorModel
from repro.runner import EstimationEngine, ProcessorConfig
from repro.workloads import list_workloads, load_workload

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _float_list(text: str) -> list[float]:
    try:
        return [float(p) for p in text.split(",") if p.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a comma-separated list of numbers: {text!r}"
        ) from None


def _grid_spec(text: str) -> list[float]:
    """Parse ``START:STOP:N`` into N evenly spaced sweep points."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected START:STOP:N, got {text!r}"
        )
    try:
        start, stop, count = float(parts[0]), float(parts[1]), int(parts[2])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected START:STOP:N with numeric bounds, got {text!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError("N must be >= 1")
    if count == 1:
        return [start]
    step = (stop - start) / (count - 1)
    return [round(start + i * step, 10) for i in range(count)]


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="process-pool width (1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=(
            "artifact-cache directory (default: $REPRO_CACHE_DIR when "
            "set, else caching is off)"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache for this run",
    )
    parser.add_argument(
        "--window-workers", type=_positive_int, default=1,
        help=(
            "intra-job window-analysis pool width (pinned to 1 when "
            "--workers already runs the jobs in parallel)"
        ),
    )
    _add_executor_argument(parser)


def _add_executor_argument(parser: argparse.ArgumentParser) -> None:
    from repro.dta.executor import available_executors

    parser.add_argument(
        "--executor", choices=available_executors(), default="auto",
        help=(
            "window-analysis executor: 'auto' picks fork or serial from "
            "the cost model, 'local-serial' and 'local-fork' force one"
        ),
    )


def _add_core_family_argument(parser: argparse.ArgumentParser) -> None:
    from repro.core.family import DEFAULT_FAMILY, available_core_families

    parser.add_argument(
        "--core-family", choices=available_core_families(),
        default=DEFAULT_FAMILY,
        help=(
            "registered core family (pipeline organization) to analyze "
            f"(default: {DEFAULT_FAMILY})"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Program error-rate estimation for timing-speculative "
            "processors (DAC 2019 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the processor operating point")
    sub.add_parser("list", help="list available benchmarks")

    est = sub.add_parser("estimate", help="estimate one benchmark")
    est.add_argument("benchmark", choices=list_workloads())
    est.add_argument("--speculation", type=float, default=1.15)
    est.add_argument("--max-instructions", type=int, default=None)
    est.add_argument("--json", action="store_true")
    _add_core_family_argument(est)

    tab = sub.add_parser("table2", help="regenerate Table 2")
    tab.add_argument("--max-instructions", type=int, default=None)
    tab.add_argument("--json", action="store_true")
    _add_core_family_argument(tab)
    _add_engine_arguments(tab)

    swp = sub.add_parser("sweep", help="speculation-ratio sweep")
    swp.add_argument("benchmark", choices=list_workloads())
    swp.add_argument(
        "--points", type=_float_list,
        default=[1.00, 1.05, 1.10, 1.15, 1.20, 1.25],
        help="comma-separated speculation ratios",
    )
    swp.add_argument(
        "--grid", type=_grid_spec, default=None, metavar="START:STOP:N",
        help=(
            "dense sweep: N evenly spaced speculation ratios from START "
            "to STOP (overrides --points); the engine batch-evaluates "
            "them in one grid pass"
        ),
    )
    swp.add_argument("--max-instructions", type=int, default=300_000)
    swp.add_argument(
        "--json", action="store_true",
        help="emit the full RunSummary (reports + cache telemetry)",
    )
    _add_core_family_argument(swp)
    _add_engine_arguments(swp)

    bat = sub.add_parser(
        "batch", help="run a batch of estimation jobs on the engine"
    )
    bat.add_argument(
        "benchmarks", nargs="*", metavar="benchmark",
        help="benchmarks to run (default: the full suite)",
    )
    bat.add_argument(
        "--speculation", type=_float_list, default=None,
        help="comma-separated speculation ratios (default: 1.15)",
    )
    bat.add_argument("--max-instructions", type=int, default=None)
    bat.add_argument("--train-instructions", type=int, default=None)
    bat.add_argument("--seed", type=int, default=0)
    bat.add_argument("--json", action="store_true")
    _add_core_family_argument(bat)
    _add_engine_arguments(bat)

    pipe = sub.add_parser(
        "pipeline", help="inspect the staged estimation pipeline"
    )
    pipe_sub = pipe.add_subparsers(dest="pipeline_command", required=True)
    ins = pipe_sub.add_parser(
        "inspect",
        help=(
            "print the registered stages, the resolved backend plan, "
            "and the artifact-store state"
        ),
    )
    ins.add_argument(
        "--backend", action="append", default=[], metavar="STAGE=NAME",
        help=(
            "select a backend for a stage (repeatable), e.g. "
            "--backend dta=reference --backend statmin=montecarlo"
        ),
    )
    ins.add_argument(
        "--cache-dir", default=None,
        help=(
            "artifact-store directory to report entry counts for "
            "(default: $REPRO_CACHE_DIR when set)"
        ),
    )
    ins.add_argument("--json", action="store_true")

    mc = sub.add_parser(
        "montecarlo",
        help="brute-force per-chip Monte Carlo validation run",
    )
    mc.add_argument("benchmark", choices=list_workloads())
    mc.add_argument(
        "--chips", type=_positive_int, default=16,
        help="manufactured chips to sample",
    )
    mc.add_argument(
        "--windows-per-block", type=_positive_int, default=6,
        help="execution windows analyzed per basic block",
    )
    mc.add_argument(
        "--window-workers", type=_positive_int, default=1,
        help="window-analysis pool width for the per-window DTA",
    )
    _add_executor_argument(mc)
    mc.add_argument("--speculation", type=float, default=1.15)
    mc.add_argument("--max-instructions", type=int, default=100_000)
    mc.add_argument("--seed", type=int, default=0)
    mc.add_argument("--json", action="store_true")

    srv = sub.add_parser(
        "serve", help="run the HTTP/JSON estimation job server"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8731)
    srv.add_argument(
        "--state-dir", default=None,
        help=(
            "service state directory holding the job queue and the "
            "shared artifact store (default: $REPRO_SERVICE_DIR when "
            "set, else .repro-service)"
        ),
    )
    srv.add_argument(
        "--workers", type=_positive_int, default=1,
        help="concurrent job-executor threads",
    )
    srv.add_argument(
        "--window-workers", type=_positive_int, default=1,
        help="intra-job window-pool width per job thread",
    )
    _add_executor_argument(srv)
    srv.add_argument(
        "--store-budget", type=int, default=None,
        help="LRU byte budget for the shared artifact store",
    )
    srv.add_argument(
        "--batch-window-ms", type=float, default=4.0,
        help=(
            "micro-batch window: a job waits up to this long (from "
            "enqueue) for grid-compatible stragglers before its batch "
            "dispatches; 0 disables coalescing"
        ),
    )
    srv.add_argument(
        "--worker-processes", type=int, default=0,
        help=(
            "persistent spawned job processes; 0 keeps execution "
            "in-thread, N>0 is arbitrated by the service-pool cost "
            "model (degrades with a recorded reason when it cannot pay)"
        ),
    )

    sm = sub.add_parser(
        "submit", help="submit one job to a running estimation server"
    )
    sm.add_argument("benchmark", choices=list_workloads())
    sm.add_argument(
        "--url", default=None,
        help=(
            "service URL (default: $REPRO_SERVICE_URL when set, else "
            "http://127.0.0.1:8731)"
        ),
    )
    sm.add_argument("--speculation", type=float, default=None)
    sm.add_argument("--max-instructions", type=int, default=None)
    sm.add_argument("--train-instructions", type=int, default=None)
    sm.add_argument("--seed", type=int, default=None)
    sm.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without polling for the result",
    )
    sm.add_argument("--timeout", type=float, default=600.0)
    sm.add_argument("--json", action="store_true")
    _add_core_family_argument(sm)
    return parser


def _engine_from_args(args) -> EstimationEngine:
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    return EstimationEngine(
        ProcessorConfig(
            core_family=getattr(args, "core_family", "inorder6")
        ),
        max_workers=args.workers,
        cache_dir=cache_dir,
        window_workers=args.window_workers,
        executor=args.executor,
    )


def _fan_out_requests(names, points, *, max_instructions=None,
                      train_instructions=None, seed=0,
                      core_family="inorder6"):
    """Build the benchmark x speculation request cross product.

    Shared by ``sweep`` and ``batch`` so both fan-outs produce
    identically shaped requests (and therefore hit the same grid
    batching and artifact-cache keys in the engine).
    """
    return [
        api.build_request(
            workload=name,
            speculation=speculation,
            max_instructions=max_instructions,
            train_instructions=train_instructions,
            seed=seed,
            core_family=core_family,
        )
        for name in names
        for speculation in points
    ]


def _report_failures(summary, out) -> None:
    for result in summary.failed:
        out.write(
            f"FAILED {result.request.describe()}\n{result.error}\n"
        )


def _cmd_info(args, out) -> int:
    processor = ProcessorModel()
    for key, value in processor.describe().items():
        val = f"{value:.1f}" if isinstance(value, float) else value
        out.write(f"{key:26s} {val}\n")
    return 0


def _cmd_list(args, out) -> int:
    for name in list_workloads():
        out.write(name + "\n")
    return 0


def _cmd_estimate(args, out) -> int:
    from repro.pipeline.pipeline import EstimationPipeline

    request = api.build_request(
        workload=args.benchmark,
        speculation=args.speculation,
        max_instructions=args.max_instructions,
        seed=0,
        core_family=args.core_family,
    )
    result = EstimationPipeline(
        ProcessorConfig(core_family=args.core_family)
    ).execute(request)
    report = result.report
    if args.json:
        out.write(json.dumps(api.report_to_json(report), indent=2) + "\n")
    else:
        out.write(str(report) + "\n")
        perf = result.processor.performance.improvement_percent(
            report.error_rate_mean / 100.0
        )
        out.write(f"net performance vs baseline: {perf:+.2f}%\n")
    return 0


def _cmd_table2(args, out) -> int:
    engine = _engine_from_args(args)
    requests = [
        api.build_request(
            workload=name, max_instructions=args.max_instructions, seed=0,
            core_family=args.core_family,
        )
        for name in list_workloads()
    ]
    summary = engine.run(requests)
    if args.json:
        rows = [
            api.report_to_json(r.report, include_timing=False)
            for r in summary.succeeded
        ]
        out.write(json.dumps(rows, indent=2) + "\n")
    else:
        for result in summary.succeeded:
            out.write(str(result.report) + "\n")
        out.write(f"# {summary.describe()}\n")
    if summary.failed:
        _report_failures(summary, out)
        return 1
    return 0


def _cmd_sweep(args, out) -> int:
    points = args.grid if args.grid is not None else args.points
    if not points:
        out.write("no sweep points given\n")
        return 2
    engine = _engine_from_args(args)
    requests = _fan_out_requests(
        [args.benchmark], points,
        max_instructions=args.max_instructions, seed=0,
        core_family=args.core_family,
    )
    summary = engine.run(requests)
    if args.json:
        out.write(json.dumps(summary.to_json(), indent=2) + "\n")
        return 1 if summary.failed else 0
    out.write(
        f"{'spec':>6s} {'MHz':>7s} {'ER%':>8s} {'perf%':>8s} "
        f"{'skipped':>7s} {'cache':>5s}\n"
    )
    for result in summary.succeeded:
        skipped = int(result.train_sim_skipped) + int(result.eval_sim_skipped)
        out.write(
            f"{result.speculation:6.2f} "
            f"{result.working_frequency_mhz:7.0f} "
            f"{result.report.error_rate_mean:8.3f} "
            f"{result.net_performance_percent:+8.2f} "
            f"{skipped:7d} "
            f"{'hit' if result.cache_hit else 'miss':>5s}\n"
        )
    out.write(f"# {summary.describe()}\n")
    if summary.failed:
        _report_failures(summary, out)
        return 1
    return 0


def _cmd_batch(args, out) -> int:
    names = args.benchmarks or list_workloads()
    unknown = sorted(set(names) - set(list_workloads()))
    if unknown:
        out.write(f"unknown benchmarks: {', '.join(unknown)}\n")
        return 2
    points = args.speculation or [None]
    engine = _engine_from_args(args)
    requests = _fan_out_requests(
        names, points,
        max_instructions=args.max_instructions,
        train_instructions=args.train_instructions,
        seed=args.seed,
        core_family=args.core_family,
    )
    summary = engine.run(requests)
    if args.json:
        out.write(json.dumps(summary.to_json(), indent=2) + "\n")
        return 1 if summary.failed else 0
    for result in summary.results:
        if result.ok:
            hit = "cache" if result.cache_hit else "train"
            out.write(
                f"{result.request.describe():24s} "
                f"ER {result.report.error_rate_mean:7.3f}% "
                f"(SD {result.report.error_rate_sd:.3f}%)  "
                f"[{hit}, {result.train_seconds + result.estimate_seconds:.1f}s, "
                f"worker {result.worker}]\n"
            )
        else:
            out.write(f"{result.request.describe():24s} FAILED\n")
    out.write(f"summary: {summary.describe()}\n")
    if summary.failed:
        _report_failures(summary, out)
        return 1
    return 0


def _cmd_montecarlo(args, out) -> int:
    from repro.core.montecarlo import MonteCarloValidator

    processor = ProcessorModel(speculation=args.speculation)
    validator = MonteCarloValidator(
        processor,
        n_chips=args.chips,
        windows_per_block=args.windows_per_block,
        window_workers=args.window_workers,
        executor=args.executor,
    )
    program, setup, budget = load_workload(args.benchmark).run_spec(
        "large", seed=args.seed
    )
    result = validator.estimate(
        program,
        setup=setup,
        max_instructions=args.max_instructions or budget,
        seed=args.seed,
    )
    if args.json:
        out.write(
            json.dumps(result.to_json(benchmark=args.benchmark), indent=2)
            + "\n"
        )
    else:
        out.write(
            f"{args.benchmark}: MC ER = {result.mean_percent:.3f}% "
            f"(SD {result.sd_percent:.3f}%) over {args.chips} chips, "
            f"{result.windows_analyzed} windows, "
            f"{result.total_instructions} instructions\n"
        )
    return 0


def _parse_backend_overrides(pairs) -> dict[str, str]:
    overrides: dict[str, str] = {}
    for pair in pairs:
        stage, sep, name = pair.partition("=")
        if not sep or not stage or not name:
            raise argparse.ArgumentTypeError(
                f"expected STAGE=NAME, got {pair!r}"
            )
        overrides[stage] = name
    return overrides


def _cmd_pipeline(args, out) -> int:
    from repro.core.family import available_core_families, get_core_family
    from repro.pipeline.registry import REGISTRY
    from repro.pipeline.store import ArtifactStore

    try:
        overrides = _parse_backend_overrides(args.backend)
        plan = REGISTRY.resolve(overrides)
    except (KeyError, argparse.ArgumentTypeError) as exc:
        out.write(f"error: {exc}\n")
        return 2
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    store = ArtifactStore(cache_dir) if cache_dir else None
    families = available_core_families()
    if args.json:
        doc = {
            "schema": "repro.pipeline/1",
            "plan": plan,
            "core_families": [
                {
                    "name": name,
                    "stages": get_core_family(name).num_stages,
                    "description": get_core_family(name).description,
                }
                for name in families
            ],
            "stages": REGISTRY.describe(),
            "store": store.describe() if store is not None else None,
        }
        out.write(json.dumps(doc, indent=2) + "\n")
        return 0
    out.write(f"{'stage':12s} {'backend':14s} {'cache id':12s} description\n")
    for entry in REGISTRY.describe():
        stage = entry["stage"]
        for backend in entry["backends"]:
            selected = "*" if plan[stage] == backend["name"] else " "
            out.write(
                f"{stage:12s} {selected}{backend['name']:13s} "
                f"{backend['cache_id']:12s} {backend['description']}\n"
            )
    out.write("core families:\n")
    for name in families:
        family = get_core_family(name)
        out.write(
            f"  {name:16s} {family.num_stages} stages  "
            f"{family.description}\n"
        )
    if store is not None:
        info = store.describe()
        out.write(f"store: {info['location']}\n")
        for namespace in sorted(info["entries"]):
            out.write(
                f"  {namespace:12s} {info['entries'][namespace]} entries\n"
            )
        if not info["entries"]:
            out.write("  (empty)\n")
    else:
        out.write("store: (none — pass --cache-dir or set REPRO_CACHE_DIR)\n")
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio

    from repro.service import EstimationService

    state_dir = args.state_dir or os.environ.get(
        "REPRO_SERVICE_DIR", ".repro-service"
    )
    service = EstimationService(
        state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        window_workers=args.window_workers,
        executor=args.executor,
        store_budget=args.store_budget,
        batch_window_ms=args.batch_window_ms,
        worker_processes=args.worker_processes,
    )

    async def _main() -> None:
        await service.start()
        queued = service.queue.counts()["queued"]
        pool = (
            f", pool: {service.pool.processes} processes"
            if service.pool is not None else ""
        )
        out.write(
            f"serving on http://{service.host}:{service.port} "
            f"(state: {state_dir}, workers: {service.workers}, "
            f"batch window: {service.batch_window_ms:g}ms{pool})\n"
        )
        if service.pool_plan is not None and service.pool is None:
            out.write(
                f"worker-process pool degraded: {service.pool_plan.reason}\n"
            )
        if queued:
            out.write(f"resuming {queued} queued job(s)\n")
        if hasattr(out, "flush"):
            out.flush()
        await service._server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        out.write("shutting down\n")
    return 0


def _cmd_submit(args, out) -> int:
    from repro.service import ServiceClient, ServiceError

    url = args.url or os.environ.get(
        "REPRO_SERVICE_URL", "http://127.0.0.1:8731"
    )
    try:
        request = api.build_request(
            workload=args.benchmark,
            speculation=args.speculation,
            max_instructions=args.max_instructions,
            train_instructions=args.train_instructions,
            seed=args.seed,
            core_family=args.core_family,
        )
    except api.ApiError as exc:
        out.write(f"error: {exc}\n")
        return 2
    client = ServiceClient(url)
    try:
        status = client.submit(request)
        if args.no_wait:
            if args.json:
                out.write(json.dumps(status.to_json(), indent=2) + "\n")
            else:
                out.write(f"submitted {status.id} ({status.state})\n")
            return 0
        result = client.wait(status.id, timeout=args.timeout)
    except (ServiceError, TimeoutError, OSError) as exc:
        out.write(f"error: {exc}\n")
        return 1
    if args.json:
        out.write(json.dumps(result.to_json(), indent=2) + "\n")
    else:
        out.write(str(result.report) + "\n")
        out.write(
            f"job {result.job}: "
            f"{'warm' if result.cache_hit else 'cold'}, "
            f"training sims {result.training_sims}, "
            f"{result.train_seconds + result.estimate_seconds:.1f}s\n"
        )
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "list": _cmd_list,
    "estimate": _cmd_estimate,
    "table2": _cmd_table2,
    "sweep": _cmd_sweep,
    "batch": _cmd_batch,
    "pipeline": _cmd_pipeline,
    "montecarlo": _cmd_montecarlo,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
