"""Encoding of pipeline occupancy into netlist source values.

The control-network characterization of Section 4 drives the processor
netlist with the instruction sequence of a basic block.  Here the per-cycle
pipeline state — which static instruction occupies each stage and with which
operand values — is mapped deterministically onto the generated netlist's
source flip-flops and inputs:

* *control sources* of a stage receive a hash expansion of the occupying
  instruction's identity token, so the same static instruction always drives
  the same control-bit pattern (the paper's observation that a basic block
  activates the same control paths on every execution);
* *data sources* receive the binary representation of the occupying
  instruction's operand values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels import kernel_config
from repro.netlist.generator import PipelineNetlist

__all__ = [
    "mix64",
    "int_to_bits",
    "StageOccupancy",
    "PipelineCycle",
    "StimulusEncoder",
]

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """SplitMix64 finalizer — a stable, platform-independent bit mixer."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def int_to_bits(value: int, width: int) -> list[bool]:
    """Little-endian bit decomposition of ``value`` truncated to ``width``."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return [bool((value >> i) & 1) for i in range(width)]


def token_bits(token: int, width: int) -> list[bool]:
    """Expand an identity token into ``width`` pseudo-random (stable) bits."""
    bits: list[bool] = []
    chunk = 0
    while len(bits) < width:
        word = mix64((token & _MASK64) ^ mix64(chunk + 1))
        bits.extend(int_to_bits(word, min(64, width - len(bits))))
        chunk += 1
    return bits


@dataclass(slots=True)
class StageOccupancy:
    """What occupies one pipeline stage in one cycle.

    Attributes:
        token: Identity token of the occupying static instruction (0 for a
            bubble/nop — drives an all-stable idle pattern).
        op_token: Coarser token identifying the *opcode* (shared by all
            instructions with the same operation).
        class_token: Coarsest token identifying the opcode *class*.
        data: Mapping from data-bus name (as published by the generated
            :class:`PipelineNetlist`) to the integer value it should carry.
            Missing buses default to 0.

    The three-level hierarchy mirrors real pipeline control state, most of
    which depends only on the instruction's kind: consecutive similar
    instructions flip few control bits, so long control paths see quiet
    side inputs and can activate coherently — without the hierarchy every
    control bit would toggle with probability one half per cycle and deep
    control paths would (unrealistically) never activate.
    """

    token: int = 0
    op_token: int = 0
    class_token: int = 0
    data: dict[str, int] = field(default_factory=dict)
    #: Semantic control-bit overrides (bit position -> value), applied
    #: after the hash encoding.  Used for functional selects that real
    #: decoders derive from the opcode (ALU unit select, subtract enable,
    #: load select): leaving them hash-random would route, say, an ADD's
    #: result bus through the multiplier.
    ctrl_overrides: dict[int, bool] = field(default_factory=dict)


#: One cycle of pipeline state: one :class:`StageOccupancy` per stage.
PipelineCycle = list[StageOccupancy]


class StimulusEncoder:
    """Maps schedules of :class:`PipelineCycle` onto simulator source values.

    Args:
        pipeline: The generated pipeline netlist with its signal map.
    """

    def __init__(self, pipeline: PipelineNetlist) -> None:
        self.pipeline = pipeline
        self.netlist = pipeline.netlist
        self.source_ids = [g.gid for g in self.netlist.gates if g.is_endpoint]
        self._source_pos = {gid: i for i, gid in enumerate(self.source_ids)}
        # Precomputed source-position scatter indices and memo tables for
        # the cached encoding path (see encode_cycle).
        self._ctrl_pos = [
            np.array([self._source_pos[g] for g in ctrl], dtype=int)
            for ctrl in pipeline.ctrl_src
        ]
        self._data_pos = [
            {
                bus: np.array([self._source_pos[g] for g in gids], dtype=int)
                for bus, gids in pipeline.data_src[s].items()
            }
            for s in range(pipeline.num_stages)
        ]
        self._ctrl_cache: dict[tuple, np.ndarray] = {}
        self._bits_cache: dict[tuple[int, int], np.ndarray] = {}

    @property
    def n_sources(self) -> int:
        return len(self.source_ids)

    def _ctrl_pattern(self, s: int, occ: StageOccupancy) -> np.ndarray:
        """The stage's control-bit pattern, memoized on the token triple."""
        key = (s, occ.class_token, occ.op_token, occ.token)
        pattern = self._ctrl_cache.get(key)
        if pattern is None:
            n = len(self.pipeline.ctrl_src[s])
            stage_salt = mix64(s + 101)
            levels = (
                token_bits(mix64(occ.class_token ^ stage_salt), n),
                token_bits(mix64(occ.op_token ^ stage_salt), n),
                token_bits(mix64(occ.token ^ stage_salt), n),
            )
            pattern = np.array(
                [
                    levels[0 if i % 4 < 2 else (1 if i % 4 == 2 else 2)][i]
                    for i in range(n)
                ],
                dtype=bool,
            )
            self._ctrl_cache[key] = pattern
        return pattern

    def _value_bits(self, value: int, width: int) -> np.ndarray:
        """Memoized little-endian bit decomposition as a bool array."""
        key = (value, width)
        bits = self._bits_cache.get(key)
        if bits is None:
            if len(self._bits_cache) > (1 << 16):
                self._bits_cache.clear()
            bits = np.array(int_to_bits(value, width), dtype=bool)
            self._bits_cache[key] = bits
        return bits

    def _encode_cycle_cached(self, cycle: PipelineCycle) -> np.ndarray:
        """Cached encoding: memoized patterns + index-array scatters."""
        row = np.zeros(self.n_sources, dtype=bool)
        for s, occ in enumerate(cycle):
            pos = self._ctrl_pos[s]
            row[pos] = self._ctrl_pattern(s, occ)
            for i, bit in occ.ctrl_overrides.items():
                row[pos[i]] = bit
            for bus_name, bus_pos in self._data_pos[s].items():
                row[bus_pos] = self._value_bits(
                    occ.data.get(bus_name, 0), len(bus_pos)
                )
        return row

    def encode_cycle(self, cycle: PipelineCycle) -> np.ndarray:
        """Encode one pipeline cycle into a source-value row."""
        num_stages = self.pipeline.num_stages
        if len(cycle) != num_stages:
            raise ValueError(
                f"cycle must have {num_stages} stage entries, got {len(cycle)}"
            )
        if kernel_config().stimulus_cache:
            return self._encode_cycle_cached(cycle)
        row = np.zeros(self.n_sources, dtype=bool)
        for s, occ in enumerate(cycle):
            ctrl = self.pipeline.ctrl_src[s]
            n = len(ctrl)
            # Mix the stage index in so the same instruction produces
            # distinct (but fixed) patterns in different stages.  Half the
            # control bits encode the opcode class, a quarter the opcode,
            # and a quarter the full static instruction (see
            # StageOccupancy).
            stage_salt = mix64(s + 101)
            levels = (
                token_bits(mix64(occ.class_token ^ stage_salt), n),
                token_bits(mix64(occ.op_token ^ stage_salt), n),
                token_bits(mix64(occ.token ^ stage_salt), n),
            )
            for i, gid in enumerate(ctrl):
                level = 0 if i % 4 < 2 else (1 if i % 4 == 2 else 2)
                bit = occ.ctrl_overrides.get(i)
                row[self._source_pos[gid]] = (
                    levels[level][i] if bit is None else bit
                )
            for bus_name, gids in self.pipeline.data_src[s].items():
                value = occ.data.get(bus_name, 0)
                for gid, bit in zip(gids, int_to_bits(value, len(gids))):
                    row[self._source_pos[gid]] = bit
        return row

    def encode_schedule(self, schedule: list[PipelineCycle]) -> np.ndarray:
        """Encode a multi-cycle schedule into ``(n_cycles, n_sources)``."""
        if not schedule:
            raise ValueError("schedule must contain at least one cycle")
        return np.stack([self.encode_cycle(c) for c in schedule])
