"""Switching-activity container — the VCD(t) sets consumed by Algorithm 1."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ActivityTrace"]


@dataclass(slots=True)
class ActivityTrace:
    """Per-cycle gate activation information.

    Attributes:
        activated: Boolean array ``(n_cycles, n_gates)``; entry ``[t, g]``
            is True when gate ``g`` is activated in cycle ``t``
            (Definition 3.2).
        values: Boolean array of settled gate values, same shape.
    """

    activated: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.activated.shape != self.values.shape:
            raise ValueError("activated and values must have the same shape")

    @property
    def n_cycles(self) -> int:
        return self.activated.shape[0]

    @property
    def n_gates(self) -> int:
        return self.activated.shape[1]

    def vcd(self, t: int) -> np.ndarray:
        """Boolean activation mask for cycle ``t`` (the paper's VCD(t))."""
        return self.activated[t]

    def activated_set(self, t: int) -> set[int]:
        """Set of activated gate ids in cycle ``t``."""
        return set(np.flatnonzero(self.activated[t]).tolist())

    def is_path_activated(self, t: int, gates) -> bool:
        """True if *all* gates of a path are activated in cycle ``t``
        (Definition 3.3)."""
        mask = self.activated[t]
        return bool(np.all(mask[np.asarray(gates, dtype=int)]))

    def activity_factor(self) -> float:
        """Fraction of (cycle, gate) slots that toggled — a sanity metric."""
        return float(self.activated.mean())

    def final_state(self) -> np.ndarray:
        """Settled values after the last cycle (chains window simulations)."""
        return self.values[-1].copy()
