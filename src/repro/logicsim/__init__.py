"""Functional gate-level simulation and switching-activity capture.

Provides the VCD(t) input of Algorithm 1: which gates are *activated*
(Definition 3.2 — settled output value changes) in each clock cycle.  The
simulator is levelized and vectorized over cycles, and the stimulus encoder
maps per-cycle pipeline occupancy (which instruction is in which stage, with
which operand values) onto the netlist's source flip-flops and inputs.
"""

from repro.logicsim.simulator import LevelizedSimulator
from repro.logicsim.activity import ActivityTrace
from repro.logicsim.stimulus import (
    StageOccupancy,
    PipelineCycle,
    StimulusEncoder,
    int_to_bits,
    mix64,
)

__all__ = [
    "LevelizedSimulator",
    "ActivityTrace",
    "StageOccupancy",
    "PipelineCycle",
    "StimulusEncoder",
    "int_to_bits",
    "mix64",
]
