"""Levelized, cycle-vectorized combinational logic simulation.

All endpoint gates (flip-flops and primary inputs) are *sources* whose values
are provided externally per cycle; combinational gates are evaluated once in
topological order with numpy over the cycle axis.

The default evaluation kernel goes one step further than per-gate
vectorization: gates are grouped by (topological level, gate type) at
construction time, with the fanin ids of each group gathered into index
arrays, so a whole level's worth of same-type gates is settled by a single
vectorized op over the ``(cycles, gates-in-group)`` plane.  The per-gate
reference loop is retained behind the ``level_grouped_sim`` kernel switch
(see :mod:`repro.kernels`) for property testing and benchmarking.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import kernel_config, kernel_stats
from repro.logicsim.activity import ActivityTrace
from repro.netlist.gates import GATE_ARITY, GateType, evaluate_gate
from repro.netlist.netlist import Netlist

__all__ = ["LevelizedSimulator"]

#: Dense opcode per gate type for the batched kernel's inline dispatch.
_OPCODE = {
    GateType.BUF: 0,
    GateType.NOT: 1,
    GateType.AND2: 2,
    GateType.OR2: 3,
    GateType.NAND2: 4,
    GateType.NOR2: 5,
    GateType.XOR2: 6,
    GateType.XNOR2: 7,
    GateType.MUX2: 8,
    GateType.MAJ3: 9,
}


class LevelizedSimulator:
    """Evaluates a netlist's combinational fabric over many cycles at once.

    Args:
        netlist: The netlist to simulate.  Must validate (acyclic fabric).
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.source_ids = [g.gid for g in netlist.gates if g.is_endpoint]
        self._source_pos = {gid: i for i, gid in enumerate(self.source_ids)}
        self._topo = netlist.topological_order()
        self._plan = self._build_plan()
        self._flushed_state: np.ndarray | None = None

    def _build_plan(self) -> list[tuple]:
        """Group combinational gates into (level, type) batches.

        Returns a list of ``(opcode, gate_ids, fanin)`` tuples in level
        order, where ``fanin`` has shape ``(len(gate_ids), arity)`` and
        holds the driver id of each input pin.  Within a level no gate
        depends on another (level = longest driver distance from a
        source), so each batch is settled by one gather over the
        ``(cycles, arity, gates-in-group)`` block plus one boolean op.
        """
        level = np.zeros(len(self.netlist), dtype=int)
        for gid in self._topo:
            gate = self.netlist.gate(gid)
            level[gid] = 1 + max(
                (level[i] for i in gate.inputs), default=0
            )
        groups: dict[tuple[int, object], list[int]] = {}
        for gid in self._topo:
            gtype = self.netlist.gate(gid).gtype
            groups.setdefault((int(level[gid]), gtype), []).append(gid)
        plan = []
        for (lvl, gtype), gids in sorted(
            groups.items(), key=lambda item: (item[0][0], item[0][1].value)
        ):
            ids = np.asarray(gids, dtype=int)
            fanin = np.array(
                [self.netlist.gate(g).inputs for g in gids], dtype=int
            ).reshape(len(gids), GATE_ARITY[gtype]).T
            plan.append((_OPCODE[gtype], ids, fanin))
        return plan

    @property
    def n_sources(self) -> int:
        return len(self.source_ids)

    def evaluate(self, source_values: np.ndarray) -> np.ndarray:
        """Compute settled values of every gate for every cycle.

        Args:
            source_values: Boolean array of shape ``(n_cycles, n_sources)``
                in the order of :attr:`source_ids`.

        Returns:
            Boolean array of shape ``(n_cycles, n_gates)`` with the settled
            output value of every gate in every cycle.
        """
        source_values = np.asarray(source_values, dtype=bool)
        if source_values.ndim != 2 or source_values.shape[1] != self.n_sources:
            raise ValueError(
                f"source_values must be (n_cycles, {self.n_sources}), got "
                f"{source_values.shape}"
            )
        n_cycles = source_values.shape[0]
        values = np.zeros((n_cycles, len(self.netlist)), dtype=bool)
        for gid, col in self._source_pos.items():
            values[:, gid] = source_values[:, col]
        stats = kernel_stats()
        stats.sim_calls += 1
        stats.sim_cycle_gates += n_cycles * len(self._topo)
        if kernel_config().level_grouped_sim:
            for code, gids, fanin in self._plan:
                # One gather per group: (n_cycles, arity, n_group); the
                # pin slices below are views into it.
                ops = values[:, fanin]
                a = ops[:, 0]
                if code == 2:
                    out = a & ops[:, 1]
                elif code == 4:
                    out = ~(a & ops[:, 1])
                elif code == 3:
                    out = a | ops[:, 1]
                elif code == 5:
                    out = ~(a | ops[:, 1])
                elif code == 6:
                    out = a ^ ops[:, 1]
                elif code == 7:
                    out = ~(a ^ ops[:, 1])
                elif code == 1:
                    out = ~a
                elif code == 0:
                    out = a
                elif code == 8:
                    out = np.where(a, ops[:, 2], ops[:, 1])
                else:
                    b, c = ops[:, 1], ops[:, 2]
                    out = (a & b) | (a & c) | (b & c)
                values[:, gids] = out
        else:
            self._evaluate_pergate(values)
        return values

    def _evaluate_pergate(self, values: np.ndarray) -> None:
        """Reference kernel: settle one gate at a time in topological order."""
        for gid in self._topo:
            gate = self.netlist.gate(gid)
            operands = [values[:, i] for i in gate.inputs]
            values[:, gid] = evaluate_gate(gate.gtype, operands)

    def flushed_state(self) -> np.ndarray:
        """Settled per-gate values of the all-zero source assignment.

        This is the "flushed fabric" default previous state of
        :meth:`activity` (inverting gates at their quiescent ones).  It
        only depends on the netlist, so it is computed once and reused
        across the many ``activity()`` calls of a characterization run.
        """
        if self._flushed_state is None:
            zero_row = np.zeros((1, self.n_sources), dtype=bool)
            self._flushed_state = self.evaluate(zero_row)[0]
        else:
            kernel_stats().flushed_state_reuses += 1
        return self._flushed_state

    def activity(
        self,
        source_values: np.ndarray,
        previous_state: np.ndarray | None = None,
    ) -> ActivityTrace:
        """Simulate and return the per-cycle activation trace (VCD).

        A gate is activated in cycle ``t`` if its settled value differs from
        cycle ``t - 1``'s (Definition 3.2, settled-value interpretation).
        Cycle 0 is compared against ``previous_state`` (per-gate settled
        values before the window; defaults to the cached
        :meth:`flushed_state` of an all-zero source assignment).
        """
        values = self.evaluate(source_values)
        if previous_state is None:
            previous_state = self.flushed_state()
        previous_state = np.asarray(previous_state, dtype=bool)
        if previous_state.shape != (len(self.netlist),):
            raise ValueError(
                f"previous_state must have shape ({len(self.netlist)},), got "
                f"{previous_state.shape}"
            )
        shifted = np.vstack([previous_state[None, :], values[:-1]])
        activated = values != shifted
        return ActivityTrace(activated=activated, values=values)
