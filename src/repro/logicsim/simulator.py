"""Levelized, cycle-vectorized combinational logic simulation.

All endpoint gates (flip-flops and primary inputs) are *sources* whose values
are provided externally per cycle; combinational gates are evaluated once in
topological order with numpy over the cycle axis, so a whole basic block's
worth of cycles is simulated in a handful of array operations per gate.
"""

from __future__ import annotations

import numpy as np

from repro.logicsim.activity import ActivityTrace
from repro.netlist.gates import evaluate_gate
from repro.netlist.netlist import Netlist

__all__ = ["LevelizedSimulator"]


class LevelizedSimulator:
    """Evaluates a netlist's combinational fabric over many cycles at once.

    Args:
        netlist: The netlist to simulate.  Must validate (acyclic fabric).
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.source_ids = [g.gid for g in netlist.gates if g.is_endpoint]
        self._source_pos = {gid: i for i, gid in enumerate(self.source_ids)}
        self._topo = netlist.topological_order()

    @property
    def n_sources(self) -> int:
        return len(self.source_ids)

    def evaluate(self, source_values: np.ndarray) -> np.ndarray:
        """Compute settled values of every gate for every cycle.

        Args:
            source_values: Boolean array of shape ``(n_cycles, n_sources)``
                in the order of :attr:`source_ids`.

        Returns:
            Boolean array of shape ``(n_cycles, n_gates)`` with the settled
            output value of every gate in every cycle.
        """
        source_values = np.asarray(source_values, dtype=bool)
        if source_values.ndim != 2 or source_values.shape[1] != self.n_sources:
            raise ValueError(
                f"source_values must be (n_cycles, {self.n_sources}), got "
                f"{source_values.shape}"
            )
        n_cycles = source_values.shape[0]
        values = np.zeros((n_cycles, len(self.netlist)), dtype=bool)
        for gid, col in self._source_pos.items():
            values[:, gid] = source_values[:, col]
        for gid in self._topo:
            gate = self.netlist.gate(gid)
            operands = [values[:, i] for i in gate.inputs]
            values[:, gid] = evaluate_gate(gate.gtype, operands)
        return values

    def activity(
        self,
        source_values: np.ndarray,
        previous_state: np.ndarray | None = None,
    ) -> ActivityTrace:
        """Simulate and return the per-cycle activation trace (VCD).

        A gate is activated in cycle ``t`` if its settled value differs from
        cycle ``t - 1``'s (Definition 3.2, settled-value interpretation).
        Cycle 0 is compared against ``previous_state`` (per-gate settled
        values before the window; defaults to the *settled* state of an
        all-zero source assignment — the flushed fabric, with inverting
        gates at their quiescent ones).
        """
        values = self.evaluate(source_values)
        if previous_state is None:
            zero_row = np.zeros((1, self.n_sources), dtype=bool)
            previous_state = self.evaluate(zero_row)[0]
        previous_state = np.asarray(previous_state, dtype=bool)
        if previous_state.shape != (len(self.netlist),):
            raise ValueError(
                f"previous_state must have shape ({len(self.netlist)},), got "
                f"{previous_state.shape}"
            )
        shifted = np.vstack([previous_state[None, :], values[:-1]])
        activated = values != shifted
        return ActivityTrace(activated=activated, values=values)
