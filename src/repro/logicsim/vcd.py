"""Value Change Dump (VCD) export/import for activity traces.

The paper's flow (Figure 1) hands switching activity to the DTA tool as a
VCD file produced by functional simulation.  This module writes
:class:`~repro.logicsim.activity.ActivityTrace` objects as standard IEEE
1364 VCD (one scalar variable per gate output, one timestamp per clock
cycle) and reads such files back, so traces can be inspected with ordinary
waveform viewers or produced by external simulators.
"""

from __future__ import annotations

import io

import numpy as np

from repro.logicsim.activity import ActivityTrace
from repro.netlist.netlist import Netlist

__all__ = ["write_vcd", "read_vcd", "trace_from_values"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier code for variable ``index``."""
    if index < 0:
        raise ValueError("index must be non-negative")
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out.append(_ID_CHARS[rem])
    return "".join(out)


def write_vcd(
    trace: ActivityTrace,
    netlist: Netlist,
    file,
    timescale: str = "1ns",
    module: str = "repro",
) -> None:
    """Write an activity trace as a VCD document.

    Args:
        trace: The simulated trace (settled values per cycle).
        netlist: Supplies signal names; sizes must match the trace.
        file: A text file object (or anything with ``write``).
        timescale: VCD timescale directive (one cycle = one tick).
        module: Scope name for the variable declarations.
    """
    if trace.n_gates != len(netlist):
        raise ValueError(
            f"trace has {trace.n_gates} gates, netlist has {len(netlist)}"
        )
    w = file.write
    w("$date repro activity trace $end\n")
    w(f"$timescale {timescale} $end\n")
    w(f"$scope module {module} $end\n")
    ids = [_identifier(g) for g in range(trace.n_gates)]
    for gate in netlist.gates:
        name = gate.name.replace(" ", "_").replace("/", ".")
        w(f"$var wire 1 {ids[gate.gid]} {name} $end\n")
    w("$upscope $end\n")
    w("$enddefinitions $end\n")
    # Initial dump: every signal's value at cycle 0.
    w("$dumpvars\n")
    for g in range(trace.n_gates):
        w(f"{int(trace.values[0, g])}{ids[g]}\n")
    w("$end\n")
    w("#0\n")
    for t in range(1, trace.n_cycles):
        changed = np.flatnonzero(trace.values[t] != trace.values[t - 1])
        if len(changed) == 0:
            continue
        w(f"#{t}\n")
        for g in changed:
            w(f"{int(trace.values[t, g])}{ids[g]}\n")


def read_vcd(file) -> tuple[np.ndarray, list[str]]:
    """Read a (scalar-only) VCD document.

    Returns ``(values, names)`` where ``values`` is a boolean array of
    shape ``(n_cycles, n_vars)`` holding each variable's value at every
    integer timestamp from 0 to the last one present, and ``names`` the
    declared variable names in declaration order.
    """
    id_to_col: dict[str, int] = {}
    names: list[str] = []
    changes: list[tuple[int, int, bool]] = []  # (time, column, value)
    time = 0
    in_definitions = True
    for raw in file:
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire 1 <id> <name> $end
                if len(parts) < 6:
                    raise ValueError(f"malformed $var line: {line!r}")
                ident, name = parts[3], parts[4]
                id_to_col[ident] = len(names)
                names.append(name)
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("$"):
            continue  # $dumpvars / $end markers
        if line.startswith("#"):
            time = int(line[1:])
            continue
        value_char, ident = line[0], line[1:]
        if value_char not in "01":
            raise ValueError(f"unsupported VCD value {value_char!r}")
        if ident not in id_to_col:
            raise ValueError(f"undeclared VCD identifier {ident!r}")
        changes.append((time, id_to_col[ident], value_char == "1"))
    if not names:
        raise ValueError("VCD contains no variable declarations")
    n_cycles = max((t for t, _, _ in changes), default=0) + 1
    values = np.zeros((n_cycles, len(names)), dtype=bool)
    # Apply changes in time order, carrying values forward.
    changes.sort(key=lambda c: c[0])
    current = np.zeros(len(names), dtype=bool)
    cursor = 0
    for t in range(n_cycles):
        while cursor < len(changes) and changes[cursor][0] == t:
            _, col, val = changes[cursor]
            current[col] = val
            cursor += 1
        values[t] = current
    return values, names


def trace_from_values(values: np.ndarray) -> ActivityTrace:
    """Rebuild an :class:`ActivityTrace` from settled values.

    Cycle 0 is taken as the baseline (nothing activated) — matching a
    dump that begins from the design's quiescent state.
    """
    values = np.asarray(values, dtype=bool)
    if values.ndim != 2:
        raise ValueError("values must be (n_cycles, n_gates)")
    activated = np.zeros_like(values)
    activated[1:] = values[1:] != values[:-1]
    return ActivityTrace(activated=activated, values=values)
