"""Simulation-phase data collection.

One architecture-level pass over the large input dataset gathers everything
the statistical model needs: exact block execution counts and edge
activation counts (the profile), plus a reservoir of *joint* per-block
execution samples — for each sampled execution of a block, the operand
records of all its instructions together with the incoming edge and the
record preceding entry.  Joint rows preserve the adjacent-instruction
correlation that the Chen–Stein dependency neighborhoods and the variance
of lambda rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.cfg.cfg import ControlFlowGraph, ENTRY_EDGE
from repro.cfg.profile import ProfileResult
from repro.cpu.interpreter import StepRecord

__all__ = ["BlockExecutionSample", "SimulationCollector"]


@dataclass(slots=True)
class BlockExecutionSample:
    """One sampled execution of a basic block.

    Attributes:
        pred: Block id the execution was entered from (:data:`ENTRY_EDGE`
            for the program entry).
        entry_prev: The dynamic record executed just before entering the
            block (``None`` at program start).
        records: The block's executed records, in instruction order.
    """

    pred: int
    entry_prev: StepRecord | None
    records: list[StepRecord]


class SimulationCollector:
    """Interpreter listener: profile + per-block joint reservoirs.

    Args:
        cfg: The program CFG.
        reservoir_size: Max sampled executions kept per block.
        seed: Reservoir-sampling seed (deterministic collection).
    """

    def __init__(
        self, cfg: ControlFlowGraph, reservoir_size: int = 160, seed=17
    ) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.cfg = cfg
        self.reservoir_size = reservoir_size
        self._rng = as_rng(seed)
        n_instr = len(cfg.program)
        self._is_leader = [False] * n_instr
        for b in cfg.blocks:
            self._is_leader[b.start] = True
        self._block_of = cfg.block_of_instruction
        self._block_counts = np.zeros(len(cfg), dtype=np.int64)
        self._edge_counts: dict[tuple[int, int], int] = {}
        self._instructions = 0
        self.reservoirs: dict[int, list[BlockExecutionSample]] = {}
        self._pending_pred = ENTRY_EDGE
        self._prev_record: StepRecord | None = None
        self._current: BlockExecutionSample | None = None
        self._current_bid = -1
        self._started = False

    # ------------------------------------------------------------------ #

    def listener(self, pc: int, a: int, b: int, r: int, next_pc: int) -> None:
        record = StepRecord(pc, a, b, r, next_pc)
        self._instructions += 1
        if not self._started or self._is_leader[pc]:
            self._enter_block(self._block_of[pc])
            self._started = True
        if self._current is not None:
            self._current.records.append(record)
        is_exit = (
            0 <= next_pc < len(self._is_leader) and self._is_leader[next_pc]
        ) or next_pc == pc
        if is_exit:
            self._leave_block()
            self._pending_pred = self._block_of[pc]
        self._prev_record = record

    def _enter_block(self, bid: int) -> None:
        self._block_counts[bid] += 1
        key = (self._pending_pred, bid)
        self._edge_counts[key] = self._edge_counts.get(key, 0) + 1
        self._current_bid = bid
        count = int(self._block_counts[bid])
        reservoir = self.reservoirs.setdefault(bid, [])
        if len(reservoir) < self.reservoir_size:
            slot = len(reservoir)
            reservoir.append(None)  # type: ignore[arg-type]
        else:
            j = int(self._rng.integers(count))
            if j >= self.reservoir_size:
                self._current = None
                return
            slot = j
        sample = BlockExecutionSample(
            pred=self._pending_pred,
            entry_prev=self._prev_record,
            records=[],
        )
        reservoir[slot] = sample
        self._current = sample

    def _leave_block(self) -> None:
        if self._current is not None:
            expected = self.cfg.block(self._current_bid).size
            if len(self._current.records) != expected:
                # Partial block execution (shouldn't happen with maximal
                # blocks) — drop the sample defensively.
                res = self.reservoirs[self._current_bid]
                res.remove(self._current)
        self._current = None

    # ------------------------------------------------------------------ #

    def profile(self) -> ProfileResult:
        """The profiling half of the collection."""
        return ProfileResult(
            block_counts=self._block_counts.copy(),
            edge_counts=dict(self._edge_counts),
            total_instructions=self._instructions,
        )

    def samples(self) -> dict[int, list[BlockExecutionSample]]:
        """Per-block joint execution samples (completed ones only).

        A sample is complete when it covers the whole block; an execution
        cut short by the instruction budget leaves a partial sample in the
        reservoir, which is filtered here.
        """
        out: dict[int, list[BlockExecutionSample]] = {}
        for bid, res in self.reservoirs.items():
            expected = self.cfg.block(bid).size
            complete = [
                s
                for s in res
                if s is not None and len(s.records) == expected
            ]
            if complete:
                out[bid] = complete
        return out
