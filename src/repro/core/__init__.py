"""The error-rate estimation framework — the paper's primary contribution.

``ProcessorModel`` bundles the hardware side (netlist, timing library,
process variation, error correction, operating frequencies);
``ErrorRateEstimator`` runs the two-phase flow — training (control-network
characterization + datapath model fitting) and simulation (architecture-
level execution with the trained models) — and produces
``ErrorRateReport`` objects carrying the error-rate distribution, its
lower/upper bounds, and the Stein / Chen–Stein approximation errors.
"""

from repro.core.processor import ProcessorModel, default_processor
from repro.core.collect import SimulationCollector, BlockExecutionSample
from repro.core.errormodel import InstructionErrorModel
from repro.core.framework import ErrorRateEstimator, TrainingArtifacts
from repro.core.request import EstimationRequest
from repro.core.results import ErrorRateReport
from repro.core.montecarlo import MonteCarloValidator, MonteCarloResult

__all__ = [
    "MonteCarloValidator",
    "MonteCarloResult",
    "ProcessorModel",
    "default_processor",
    "SimulationCollector",
    "BlockExecutionSample",
    "InstructionErrorModel",
    "ErrorRateEstimator",
    "EstimationRequest",
    "TrainingArtifacts",
    "ErrorRateReport",
]
