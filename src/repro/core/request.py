"""The unified estimation-request API.

One :class:`EstimationRequest` names everything a train+estimate run
depends on — the workload, the training/evaluation dataset pair, the
operating point, the execution budgets, and the sampling parameters — so
callers (CLI, batch engine, examples, benchmarks) stop hand-threading
``workload.setup(workload.dataset(...))`` / ``workload.budget(...)``
triples through copy-pasted boilerplate.  The request is immutable,
picklable (when the workload is referenced by name), and has a stable
identity document that the artifact cache and the per-job seed derivation
both key on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._util import check_in, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import Workload

__all__ = ["EstimationRequest"]


@dataclass(frozen=True)
class EstimationRequest:
    """One (workload, dataset pair, operating point) estimation job.

    Attributes:
        workload: Benchmark name (picklable, resolved through the workload
            registry) or a :class:`~repro.workloads.base.Workload` object
            for bring-your-own programs.
        train_scale: Dataset scale for the training phase.
        eval_scale: Dataset scale for the simulation/estimation phase.
        train_seed: Training dataset seed (``None`` = the scale's
            canonical seed).
        eval_seed: Evaluation dataset seed (``None`` = canonical).
        speculation: Working-frequency ratio for this job, or ``None`` to
            use the executing processor's configured operating point.
        max_instructions: Evaluation-run budget override (``None`` = the
            workload's ``eval_scale`` budget).
        train_instructions: Training-run budget override (``None`` = the
            workload's ``train_scale`` budget).
        seed: Data-variation sampling seed; ``None`` derives a
            deterministic per-job seed from the request identity.
        reservoir_size: Per-block operand reservoir size for the
            simulation collector.
        core_family: Registered core-family name the job runs on
            (``"inorder6"`` by default).
    """

    workload: "str | Workload"
    train_scale: str = "small"
    eval_scale: str = "large"
    train_seed: int | None = None
    eval_seed: int | None = None
    speculation: float | None = None
    max_instructions: int | None = None
    train_instructions: int | None = None
    seed: int | None = None
    reservoir_size: int = 160
    core_family: str = "inorder6"

    def __post_init__(self) -> None:
        from repro.core.family import get_core_family
        from repro.workloads.base import SCALES

        check_in("train_scale", self.train_scale, set(SCALES))
        check_in("eval_scale", self.eval_scale, set(SCALES))
        check_positive("reservoir_size", self.reservoir_size)
        if self.speculation is not None:
            check_positive("speculation", self.speculation)
        get_core_family(self.core_family)

    # ------------------------------------------------------------------ #

    @property
    def workload_name(self) -> str:
        """The benchmark name, whether given by name or by object."""
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    def resolve_workload(self) -> "Workload":
        """The workload object (loaded from the registry when named)."""
        if isinstance(self.workload, str):
            from repro.workloads import load_workload

            return load_workload(self.workload)
        return self.workload

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    def identity_doc(self) -> dict:
        """The request's run-defining fields as a canonical document.

        Used for the deterministic per-job seed and as part of the
        artifact-cache key material.
        """
        doc = {
            "workload": self.workload_name,
            "train_scale": self.train_scale,
            "eval_scale": self.eval_scale,
            "train_seed": self.train_seed,
            "eval_seed": self.eval_seed,
            "speculation": self.speculation,
            "max_instructions": self.max_instructions,
            "train_instructions": self.train_instructions,
            "reservoir_size": self.reservoir_size,
        }
        # Omitted at the default so pre-family requests keep the same
        # identity (and therefore the same derived per-job seed).
        if self.core_family != "inorder6":
            doc["core_family"] = self.core_family
        return doc

    def resolved_seed(self) -> int:
        """The sampling seed: explicit, or derived from the identity."""
        if self.seed is not None:
            return self.seed
        blob = json.dumps(self.identity_doc(), sort_keys=True).encode()
        return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")

    def describe(self) -> str:
        """Short human-readable job label for telemetry and logs."""
        spec = (
            "" if self.speculation is None
            else f" @ {self.speculation:.2f}x"
        )
        return f"{self.workload_name}{spec}"
