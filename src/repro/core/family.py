"""Core-family registry: pluggable pipeline organizations.

The paper's estimation flow — per-stage DTS characterization, AP
selection, statistical minimum, error rate — is core-agnostic: nothing
in Algorithms 1/2 or the limit-theorem estimate cares *which* pipeline
produced the per-cycle stage activity.  What is core-specific is bundled
here into a frozen :class:`CoreFamily` descriptor owning

* the **pipeline structure** (stage mnemonics and depth) and the
  **execution semantics** (the scheduler mapping instruction windows
  onto per-cycle stage occupancy — ``repro.cpu.pipeline`` for the
  in-order core, ``repro.cpu.ooo`` for the Tomasulo core);
* the **netlist generation hook** (the per-stage builder composition in
  ``repro.netlist.generator`` / ``repro.netlist.ooo``);
* the **error-model semantics** (how a correction scheme's replay/flush
  penalty composes with family-specific recovery — an out-of-order core
  pays extra reorder-buffer drain on every correction event, the same
  machinery that recovers branch mispredictions);
* the **performance accounting** (the ``repro.perf`` model built from
  the composed penalty).

Families register by name, mirroring ``BackendRegistry`` and
``register_executor``: out-of-tree cores plug in with
:func:`register_core_family` instead of edits to ``repro.netlist`` or
``repro.core.errormodel``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.perf.model import TSPerformanceModel

__all__ = [
    "DEFAULT_FAMILY",
    "CoreFamily",
    "register_core_family",
    "get_core_family",
    "available_core_families",
    "resolve_core_family",
    "occupancy_pairs",
]

#: The family every pre-schema-4 document and request implies.
DEFAULT_FAMILY = "inorder6"


def occupancy_pairs(entry, num_stages: int):
    """Normalize an analyzer entry into explicit ``(stage, cycle)`` pairs.

    Schedulers describe an instruction's journey either as an *entry
    cycle* (the in-order contract: stage ``s`` is occupied at cycle
    ``entry + s``) or as an explicit pair list (out-of-order cores,
    where issue and completion reorder freely).  Consumers that need the
    pairs (the Monte Carlo validator's per-stage loop) expand through
    this helper so both forms behave identically.
    """
    from repro.dta.algorithm2 import entry_pairs

    return entry_pairs(entry, num_stages)


@dataclass(frozen=True)
class CoreFamily:
    """One pipeline organization the estimation flow can target.

    Attributes:
        name: Registry name (``"inorder6"``, ``"ooo-tomasulo"``).
        description: One-line human description (``pipeline inspect``).
        stage_names: Stage mnemonics, in pipeline order; their count is
            the family's pipeline depth.
        build_netlist: ``(PipelineConfig | None) -> PipelineNetlist`` —
            the family's netlist generator (per-stage builder selection
            lives behind this hook, not in module-level constants).
        make_scheduler: ``(program, pipeline) -> scheduler`` building
            the family's occupancy scheduler.  The returned object must
            provide ``schedule(window)`` (per-cycle
            :class:`~repro.logicsim.stimulus.PipelineCycle` list) and
            ``entries(window, slot_indices)`` (one analyzer entry per
            slot: an entry cycle, or explicit ``(stage, cycle)`` pairs).
        recovery_cycles: Family-specific cycles added to every corrected
            error on top of the scheme's replay/flush penalty (e.g.
            reorder-buffer drain + reservation-station flush for the
            speculative out-of-order core).  Ignored for schemes that do
            not correct (``NoCorrection``).
        performance_factory: Callable building the perf/overhead model
            from ``(speculation=..., penalty_cycles=...)``; defaults to
            :class:`~repro.perf.model.TSPerformanceModel`.
    """

    name: str
    description: str
    stage_names: tuple[str, ...]
    build_netlist: Callable
    make_scheduler: Callable
    recovery_cycles: float = 0.0
    performance_factory: Callable = TSPerformanceModel

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("core family needs a non-empty name")
        if not self.stage_names:
            raise ValueError(
                f"core family {self.name!r} needs at least one stage"
            )
        if self.recovery_cycles < 0:
            raise ValueError("recovery_cycles must be non-negative")

    @property
    def num_stages(self) -> int:
        """The family's pipeline depth."""
        return len(self.stage_names)

    # ------------------------------------------------------------------ #
    # Error-model semantics (family-composed correction penalties)
    # ------------------------------------------------------------------ #

    def correction_penalty(
        self, scheme, num_stages: int | None = None
    ) -> float:
        """Cycles lost per corrected error on this family.

        The scheme's replay/flush penalty composes with the family's
        recovery cost: an in-order core restarts by refilling the
        pipeline (the scheme's own accounting), while a speculative
        out-of-order core additionally drains its reorder buffer and
        reservation stations — the same recovery path its branch
        mispredictions take.  Schemes that do not correct
        (``guarantees_correctness() is False``) charge no recovery.
        """
        depth = self.num_stages if num_stages is None else num_stages
        penalty = scheme.penalty_cycles(depth)
        if self.recovery_cycles and scheme.guarantees_correctness():
            penalty += self.recovery_cycles
        return penalty

    def make_performance(
        self, speculation: float, scheme, num_stages: int | None = None
    ):
        """The family's perf model at one operating point."""
        return self.performance_factory(
            speculation=speculation,
            penalty_cycles=self.correction_penalty(scheme, num_stages),
        )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

_FAMILIES: dict[str, CoreFamily] = {}


def register_core_family(family: CoreFamily) -> CoreFamily:
    """Register a :class:`CoreFamily` under its name.

    Out-of-tree families call this directly — no edits to
    ``repro.netlist`` or ``repro.core.errormodel`` required.
    """
    if family.name in _FAMILIES:
        raise ValueError(
            f"core family {family.name!r} is already registered"
        )
    _FAMILIES[family.name] = family
    return family


def get_core_family(name: str) -> CoreFamily:
    """The registered family for ``name``; raises naming the options."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown core family {name!r}; "
            f"registered: {', '.join(_FAMILIES) or '(none)'}"
        ) from None


def available_core_families() -> list[str]:
    """Registered family names, in registration order."""
    return list(_FAMILIES)


def resolve_core_family(family) -> CoreFamily:
    """Normalize ``None`` / name / descriptor into a :class:`CoreFamily`."""
    if family is None:
        return get_core_family(DEFAULT_FAMILY)
    if isinstance(family, CoreFamily):
        return family
    return get_core_family(family)


# --------------------------------------------------------------------- #
# Built-in families
# --------------------------------------------------------------------- #


def _inorder_scheduler(program, pipeline):
    from repro.cpu.pipeline import PipelineScheduler

    return PipelineScheduler(program, num_stages=pipeline.num_stages)


def _register_builtin_families() -> None:
    from repro.cpu.ooo.scheduler import make_ooo_scheduler
    from repro.netlist.generator import STAGE_NAMES, generate_pipeline
    from repro.netlist.ooo import OOO_STAGE_NAMES, generate_ooo_pipeline

    register_core_family(
        CoreFamily(
            name=DEFAULT_FAMILY,
            description=(
                "6-stage in-order integer pipeline "
                "(LEON3 stand-in, the paper's Section 6.1 core)"
            ),
            stage_names=STAGE_NAMES,
            build_netlist=generate_pipeline,
            make_scheduler=_inorder_scheduler,
        )
    )
    register_core_family(
        CoreFamily(
            name="ooo-tomasulo",
            description=(
                "speculative out-of-order Tomasulo core: reservation "
                "stations, reorder buffer, 2-bit branch prediction with "
                "misprediction recovery"
            ),
            stage_names=OOO_STAGE_NAMES,
            build_netlist=generate_ooo_pipeline,
            make_scheduler=make_ooo_scheduler,
            # Correction events flush speculative state through the same
            # path as a branch misprediction: reorder-buffer drain plus
            # reservation-station/rename-map repair.
            recovery_cycles=4.0,
        )
    )


_register_builtin_families()
