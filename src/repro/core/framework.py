"""The end-to-end error-rate estimation flow (legacy composition root).

Two phases, mirroring Section 6.2:

* **Training** — execute the program on its *training* (small) dataset,
  capture one pipeline window per (basic block, incoming edge), and run the
  gate-level control-network characterization; fit the datapath timing
  model (once per processor).
* **Simulation** — execute the program on its *evaluation* (large) dataset
  at architecture level, collect the profile and joint operand samples,
  evaluate the instruction error model, solve the CFG linear systems for
  marginal probabilities, and assemble the statistical estimate: Gaussian
  lambda (CLT + Stein bound), Poisson mixture (Eq. 14 + Chen–Stein bound),
  and the bound CDFs of Section 6.4.

The flow itself now lives in the staged pipeline
(:class:`repro.pipeline.pipeline.EstimationPipeline`), where each phase
is a registered backend with a typed contract.  This module keeps the
original :class:`ErrorRateEstimator` surface as a thin shim over that
pipeline: constructing it still works everywhere, every method delegates,
and outputs are byte-identical — but the keyword paths the pipeline
absorbed (``window_workers``, ``activity_cache``) emit a
``DeprecationWarning`` pointing at their pipeline spelling.
"""

from __future__ import annotations

import warnings

from repro.core.processor import ProcessorModel
from repro.core.request import EstimationRequest
from repro.core.results import ErrorRateReport
from repro.cpu.program import Program
from repro.dta.characterize import ControlCharacterizer
from repro.dta.windowpool import ActivityCache
from repro.pipeline.ir import TrainingArtifacts

__all__ = ["ErrorRateEstimator", "TrainingArtifacts"]


class ErrorRateEstimator:
    """The paper's framework, end to end (shim over the staged pipeline).

    Args:
        processor: Hardware configuration under analysis.
        n_data_samples: Data-variation sample count used to represent the
            probability random variables.
        window_workers: *Deprecated* — select the ``dta.windowpool``
            backend on an :class:`~repro.pipeline.pipeline.EstimationPipeline`
            instead.  Fork-pool width for the intra-job window-analysis
            fan-out; ``1`` runs serially, and parallel results are
            byte-identical to serial.
        activity_cache: *Deprecated* — pass the cache to the pipeline
            instead.  Content-addressed window activity cache shared by
            training, on-demand characterization, and breakdowns (a
            fresh one is built when omitted).
    """

    def __init__(
        self,
        processor: ProcessorModel,
        n_data_samples: int = 128,
        window_workers: int | None = None,
        activity_cache: ActivityCache | None = None,
    ) -> None:
        if window_workers is not None:
            warnings.warn(
                "ErrorRateEstimator(window_workers=...) is deprecated; "
                "use EstimationPipeline(..., backends={'dta': 'windowpool'}, "
                "window_workers=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if activity_cache is not None:
            warnings.warn(
                "ErrorRateEstimator(activity_cache=...) is deprecated; "
                "use EstimationPipeline(..., activity_cache=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        # Validation stays here so the legacy error contract is exact
        # even though the pipeline re-validates.
        if n_data_samples < 2:
            raise ValueError("n_data_samples must be >= 2")
        workers = 1 if window_workers is None else window_workers
        if workers < 1:
            raise ValueError("window_workers must be >= 1")
        from repro.pipeline.pipeline import EstimationPipeline

        self._pipeline = EstimationPipeline(
            processor,
            backends={"dta": "windowpool" if workers > 1 else "kernels"},
            store=None,
            n_data_samples=n_data_samples,
            window_workers=workers,
            activity_cache=activity_cache,
        )

    # ------------------------------------------------------------------ #
    # Legacy attribute surface
    # ------------------------------------------------------------------ #

    @property
    def processor(self) -> ProcessorModel:
        return self._pipeline.processor

    @property
    def n_data_samples(self) -> int:
        return self._pipeline.n_data_samples

    @property
    def window_workers(self) -> int:
        return self._pipeline.window_workers

    @property
    def activity_cache(self) -> ActivityCache:
        return self._pipeline.activity_cache

    def _build_characterizer(self, program: Program) -> ControlCharacterizer:
        """A characterizer wired to this estimator's cache and pool width."""
        return self._pipeline.build_characterizer(program)

    # ------------------------------------------------------------------ #
    # Period-independent window artifacts (frequency-sweep reuse)
    # ------------------------------------------------------------------ #

    def window_doc(self) -> dict:
        """Persistable period-independent window artifacts.

        Bundles the content-addressed activity traces with the stage
        analyzer's path-moment registry; see
        :meth:`EstimationPipeline.window_doc`.
        """
        return self._pipeline.window_doc()

    def preload_windows(self, doc: dict) -> int:
        """Load a :meth:`window_doc` document; returns entries added."""
        return self._pipeline.preload_windows(doc)

    # ------------------------------------------------------------------ #
    # Phase 1: training
    # ------------------------------------------------------------------ #

    def train(
        self,
        program: Program,
        setup=None,
        max_instructions: int = 2_000_000,
    ) -> TrainingArtifacts:
        """Characterize the program's control network on a training run."""
        return self._pipeline.train(
            program, setup=setup, max_instructions=max_instructions
        )

    def load_artifacts(self, program: Program, path) -> TrainingArtifacts:
        """Reload artifacts persisted by :meth:`TrainingArtifacts.save`."""
        return self._pipeline.load_artifacts(program, path)

    def artifacts_from_doc(
        self, program: Program, doc: dict
    ) -> TrainingArtifacts:
        """Rebuild :class:`TrainingArtifacts` from a persisted document."""
        return self._pipeline.artifacts_from_doc(program, doc)

    # ------------------------------------------------------------------ #
    # Phase 2: simulation + estimation
    # ------------------------------------------------------------------ #

    def estimate(
        self,
        program: Program,
        artifacts: TrainingArtifacts,
        setup=None,
        max_instructions: int = 5_000_000,
        reservoir_size: int = 160,
        seed: int = 0,
    ) -> ErrorRateReport:
        """Estimate the program's error-rate distribution on a dataset."""
        return self._pipeline.estimate(
            program,
            artifacts,
            setup=setup,
            max_instructions=max_instructions,
            reservoir_size=reservoir_size,
            seed=seed,
        )

    def _characterize_missing(self, artifacts, samples) -> None:
        """On-demand characterization for blocks/edges unseen in training."""
        self._pipeline._dta.characterize_missing(artifacts, samples)

    # ------------------------------------------------------------------ #

    def run(
        self,
        request: EstimationRequest,
        artifacts: TrainingArtifacts | None = None,
    ) -> ErrorRateReport:
        """Execute one :class:`EstimationRequest` end to end.

        Resolves the workload, trains on the request's training dataset
        (unless pre-trained ``artifacts`` are supplied), and estimates on
        the evaluation dataset.  A request carrying a ``speculation``
        different from this estimator's processor runs on a derived
        operating point that shares the period-independent trained
        engines and the activity cache.
        """
        return self._pipeline.run(request, artifacts)

    def instruction_breakdown(
        self,
        program: Program,
        artifacts: TrainingArtifacts,
        setup=None,
        max_instructions: int = 1_000_000,
        seed: int = 0,
    ) -> list[dict]:
        """Per-static-instruction contribution to the expected error count."""
        return self._pipeline.instruction_breakdown(
            program,
            artifacts,
            setup=setup,
            max_instructions=max_instructions,
            seed=seed,
        )
