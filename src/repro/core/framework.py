"""The end-to-end error-rate estimation flow.

Two phases, mirroring Section 6.2:

* **Training** — execute the program on its *training* (small) dataset,
  capture one pipeline window per (basic block, incoming edge), and run the
  gate-level control-network characterization; fit the datapath timing
  model (once per processor).
* **Simulation** — execute the program on its *evaluation* (large) dataset
  at architecture level, collect the profile and joint operand samples,
  evaluate the instruction error model, solve the CFG linear systems for
  marginal probabilities, and assemble the statistical estimate: Gaussian
  lambda (CLT + Stein bound), Poisson mixture (Eq. 14 + Chen–Stein bound),
  and the bound CDFs of Section 6.4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cfg.cfg import ControlFlowGraph, build_cfg
from repro.cfg.marginal import BlockProbabilities, MarginalSolver
from repro.core.collect import SimulationCollector
from repro.core.errormodel import InstructionErrorModel
from repro.core.processor import ProcessorModel
from repro.core.request import EstimationRequest
from repro.core.results import ErrorRateReport
from repro.cpu.interpreter import FunctionalSimulator
from repro.cpu.program import Program
from repro.cpu.state import MachineState
from repro.dta.characterize import (
    ControlCharacterizer,
    ControlSampleCollector,
    ControlTimingModel,
)
from repro.dta.windowpool import ActivityCache
from repro.kernels import kernel_stats
from repro.sta.gaussian import Gaussian
from repro.stats.chen_stein import chen_stein_bound
from repro.stats.mixture import PoissonGaussianMixture
from repro.stats.stein import stein_normal_bound

__all__ = ["ErrorRateEstimator", "TrainingArtifacts"]


@dataclass(slots=True)
class TrainingArtifacts:
    """Everything the training phase produces for one program.

    ``clock_period`` records the speculative clock period (ps) the
    control model was characterized at; loading refuses artifacts trained
    at a different period, since the characterized slack distributions
    are meaningless off-period.
    """

    cfg: ControlFlowGraph
    control_model: ControlTimingModel
    characterizer: ControlCharacterizer
    training_seconds: float
    training_instructions: int
    clock_period: float | None = None
    #: Kernel-layer counters accumulated during training (transient
    #: telemetry — not persisted; ``None`` for loaded artifacts).
    kernel_stats: dict | None = None

    def to_doc(self) -> dict:
        """The persistable document behind :meth:`save`."""
        return {
            "schema": "repro.training-artifacts/1",
            "control_model": self.control_model.to_json(),
            "training_seconds": self.training_seconds,
            "training_instructions": self.training_instructions,
            "clock_period": self.clock_period,
        }

    def save(self, path) -> None:
        """Persist the trained control model (JSON).

        The CFG and characterizer are deterministic functions of the
        program and processor, so only the (expensive) characterized
        timing needs storing — plus the clock period it is valid for;
        reload with :meth:`ErrorRateEstimator.load_artifacts`.
        """
        import json

        with open(path, "w") as handle:
            json.dump(self.to_doc(), handle)


class ErrorRateEstimator:
    """The paper's framework, end to end.

    Args:
        processor: Hardware configuration under analysis.
        n_data_samples: Data-variation sample count used to represent the
            probability random variables.
        window_workers: Fork-pool width for the intra-job window-analysis
            fan-out (per-(block, edge) characterization); ``1`` runs
            serially.  Parallel results are byte-identical to serial.
        activity_cache: Content-addressed window activity cache shared by
            training, on-demand characterization, and breakdowns (a
            fresh one is built when omitted).  Preload persisted entries
            with :meth:`preload_windows` to reuse logic simulations
            across clock periods.
    """

    def __init__(
        self,
        processor: ProcessorModel,
        n_data_samples: int = 128,
        window_workers: int = 1,
        activity_cache: ActivityCache | None = None,
    ) -> None:
        if n_data_samples < 2:
            raise ValueError("n_data_samples must be >= 2")
        if window_workers < 1:
            raise ValueError("window_workers must be >= 1")
        self.processor = processor
        self.n_data_samples = n_data_samples
        self.window_workers = window_workers
        self.activity_cache = (
            activity_cache if activity_cache is not None else ActivityCache()
        )

    def _build_characterizer(self, program: Program) -> ControlCharacterizer:
        """A characterizer wired to this estimator's cache and pool width."""
        return ControlCharacterizer(
            self.processor.pipeline,
            self.processor.control_analyzer,
            program,
            self.processor.scheme,
            self.processor.clock_period,
            activity_cache=self.activity_cache,
            window_workers=self.window_workers,
        )

    # ------------------------------------------------------------------ #
    # Period-independent window artifacts (frequency-sweep reuse)
    # ------------------------------------------------------------------ #

    def window_doc(self) -> dict:
        """Persistable period-independent window artifacts.

        Bundles the content-addressed activity traces with the stage
        analyzer's path-moment registry.  Neither depends on the clock
        period — the period enters only through the risky-endpoint
        filter and the Clark combines — so an estimator for *another*
        operating point of the same processor/program can
        :meth:`preload_windows` this document and re-characterize with
        zero logic simulations.
        """
        return {
            "schema": "repro.window-artifacts/1",
            "activity": self.activity_cache.to_doc(),
            "path_registry": (
                self.processor.control_analyzer.stage_analyzer.registry_doc()
            ),
        }

    def preload_windows(self, doc: dict) -> int:
        """Load a :meth:`window_doc` document; returns entries added.

        Preloading is strictly fill-missing on both layers (activity
        digests, path registry/covariances), so it can only skip work,
        never change results.
        """
        if doc.get("schema") != "repro.window-artifacts/1":
            raise ValueError(
                f"unsupported window-artifacts schema "
                f"{doc.get('schema')!r}"
            )
        added = self.activity_cache.preload(doc["activity"])
        registry = doc.get("path_registry")
        if registry is not None:
            self.processor.control_analyzer.stage_analyzer.preload_registry(
                registry
            )
        return added

    # ------------------------------------------------------------------ #
    # Phase 1: training
    # ------------------------------------------------------------------ #

    def train(
        self,
        program: Program,
        setup=None,
        max_instructions: int = 2_000_000,
    ) -> TrainingArtifacts:
        """Characterize the program's control network on a training run.

        Args:
            program: The program.
            setup: Optional callable ``setup(state, )`` initializing the
                machine (training/small dataset).
            max_instructions: Budget for the training execution.
        """
        start = time.perf_counter()
        kernels_before = kernel_stats().snapshot()
        cfg = build_cfg(program)
        simulator = FunctionalSimulator(program)
        state = MachineState()
        if setup is not None:
            setup(state)
        collector = ControlSampleCollector(cfg)
        result = simulator.run(
            state, max_instructions=max_instructions,
            listener=collector.listener,
        )
        characterizer = self._build_characterizer(program)
        control_model = characterizer.characterize(collector.samples)
        # The datapath model is shared across programs; its (cached)
        # construction is charged to the first training phase that uses it.
        _ = self.processor.datapath_model
        elapsed = time.perf_counter() - start
        return TrainingArtifacts(
            cfg=cfg,
            control_model=control_model,
            characterizer=characterizer,
            training_seconds=elapsed,
            training_instructions=result.instructions,
            clock_period=self.processor.clock_period,
            kernel_stats=kernel_stats().delta(kernels_before).to_json(),
        )

    def load_artifacts(self, program: Program, path) -> TrainingArtifacts:
        """Reload artifacts persisted by :meth:`TrainingArtifacts.save`.

        The CFG and characterizer are rebuilt for this estimator's
        processor; loading refuses a model trained at a different clock
        period (``ValueError``), since off-period slack Gaussians would
        silently corrupt the estimate.
        """
        import json

        with open(path) as handle:
            doc = json.load(handle)
        return self.artifacts_from_doc(program, doc)

    def artifacts_from_doc(
        self, program: Program, doc: dict
    ) -> TrainingArtifacts:
        """Rebuild :class:`TrainingArtifacts` from a persisted document.

        The in-memory form of :meth:`load_artifacts`, shared with the
        batch engine's artifact cache.
        """
        stored_period = doc.get("clock_period")
        if stored_period is None:
            raise ValueError(
                "artifacts document does not record a clock period; "
                "re-train and re-save with this version"
            )
        period = self.processor.clock_period
        if abs(float(stored_period) - period) > 1e-6 * period:
            raise ValueError(
                f"artifacts were trained at clock period "
                f"{float(stored_period):.3f} ps but this processor runs "
                f"at {period:.3f} ps; re-train for this operating point"
            )
        cfg = build_cfg(program)
        characterizer = self._build_characterizer(program)
        return TrainingArtifacts(
            cfg=cfg,
            control_model=ControlTimingModel.from_json(
                doc["control_model"]
            ),
            characterizer=characterizer,
            training_seconds=float(doc["training_seconds"]),
            training_instructions=int(doc["training_instructions"]),
            clock_period=float(stored_period),
        )

    # ------------------------------------------------------------------ #
    # Phase 2: simulation + estimation
    # ------------------------------------------------------------------ #

    def estimate(
        self,
        program: Program,
        artifacts: TrainingArtifacts,
        setup=None,
        max_instructions: int = 5_000_000,
        reservoir_size: int = 160,
        seed: int = 0,
    ) -> ErrorRateReport:
        """Estimate the program's error-rate distribution on a dataset."""
        start = time.perf_counter()
        kernels_before = kernel_stats().snapshot()
        cfg = artifacts.cfg
        simulator = FunctionalSimulator(program)
        state = MachineState()
        if setup is not None:
            setup(state)
        collector = SimulationCollector(cfg, reservoir_size=reservoir_size)
        simulator.run(
            state, max_instructions=max_instructions,
            listener=collector.listener,
        )
        profile = collector.profile()
        samples = collector.samples()
        self._characterize_missing(artifacts, samples)

        error_model = InstructionErrorModel(
            self.processor, program, cfg, artifacts.control_model
        )
        conditionals = error_model.all_block_probabilities(
            samples, n_samples=self.n_data_samples, seed=seed
        )
        # A block whose only execution was cut off by the instruction
        # budget has no complete sample; treat it as error-free (its
        # weight is at most one truncated execution).
        for bid in profile.executed_blocks():
            if bid not in conditionals:
                n_i = cfg.block(bid).size
                conditionals[bid] = BlockProbabilities(
                    pc=np.zeros((n_i, self.n_data_samples)),
                    pe=np.zeros((n_i, self.n_data_samples)),
                )
        solver = MarginalSolver(cfg, profile)
        marginals, p_in = solver.solve(conditionals)
        executions = {
            bid: int(profile.block_counts[bid])
            for bid in profile.executed_blocks()
        }
        stein = stein_normal_bound(marginals, executions)
        chen = chen_stein_bound(
            marginals,
            {bid: bp.pe for bid, bp in conditionals.items()},
            p_in,
            executions,
        )
        lam = Gaussian(stein.mean, stein.variance)
        mixture = PoissonGaussianMixture(lam)
        elapsed = time.perf_counter() - start
        kernels = (
            kernel_stats()
            .delta(kernels_before)
            .merge(artifacts.kernel_stats)
            .to_json()
        )
        return ErrorRateReport(
            program=program.name,
            total_instructions=profile.total_instructions,
            static_instructions=len(program),
            basic_blocks=len(cfg),
            characterized_pairs=len(artifacts.control_model),
            lam=lam,
            mixture=mixture,
            stein=stein,
            chen_stein=chen,
            training_seconds=artifacts.training_seconds,
            simulation_seconds=elapsed,
            kernel_stats=kernels,
            training_kernel_stats=artifacts.kernel_stats,
        )

    def _characterize_missing(self, artifacts, samples) -> None:
        """On-demand characterization for blocks/edges unseen in training.

        Blocks reached only by the evaluation dataset get characterized
        from the simulation-phase window (with the single pre-entry record
        as the pipeline-sharing tail).  Missing pairs are batched through
        the same window-analysis pool as training, in sorted key order.
        """
        model = artifacts.control_model
        tasks = []
        for bid, block_samples in sorted(samples.items()):
            preds_needed = {s.pred for s in block_samples}
            for pred in sorted(preds_needed):
                try:
                    model.get(bid, pred, 0)
                    continue
                except KeyError:
                    pass
                example = next(
                    s for s in block_samples if s.pred == pred
                )
                tail = [example.entry_prev] if example.entry_prev else []
                tasks.append((bid, pred, tail, example.records))
        if tasks:
            artifacts.characterizer.characterize_many(tasks, model)

    # ------------------------------------------------------------------ #

    def run(
        self,
        request: EstimationRequest,
        artifacts: TrainingArtifacts | None = None,
    ) -> ErrorRateReport:
        """Execute one :class:`EstimationRequest` end to end.

        Resolves the workload, trains on the request's training dataset
        (unless pre-trained ``artifacts`` are supplied), and estimates on
        the evaluation dataset.  A request carrying a ``speculation``
        different from this estimator's processor runs on a derived
        operating point (:meth:`ProcessorModel.derive`) that shares the
        period-independent trained engines.
        """
        workload = request.resolve_workload()
        estimator = self
        if (
            request.speculation is not None
            and request.speculation != self.processor.speculation
        ):
            # The derived operating point shares the period-independent
            # engines (ProcessorModel.derive) — and the activity cache,
            # since stimulus digests are period-independent too.
            estimator = ErrorRateEstimator(
                self.processor.derive(speculation=request.speculation),
                n_data_samples=self.n_data_samples,
                window_workers=self.window_workers,
                activity_cache=self.activity_cache,
            )
        program, train_setup, train_budget = workload.run_spec(
            request.train_scale, seed=request.train_seed
        )
        if artifacts is None:
            artifacts = estimator.train(
                program,
                setup=train_setup,
                max_instructions=(
                    request.train_instructions or train_budget
                ),
            )
        _, eval_setup, eval_budget = workload.run_spec(
            request.eval_scale, seed=request.eval_seed
        )
        return estimator.estimate(
            program,
            artifacts,
            setup=eval_setup,
            max_instructions=request.max_instructions or eval_budget,
            reservoir_size=request.reservoir_size,
            seed=request.resolved_seed(),
        )

    def instruction_breakdown(
        self,
        program: Program,
        artifacts: TrainingArtifacts,
        setup=None,
        max_instructions: int = 1_000_000,
        seed: int = 0,
    ) -> list[dict]:
        """Per-static-instruction contribution to the expected error count.

        Returns one row per executed instruction, sorted by decreasing
        contribution to lambda: ``{"block", "position", "index",
        "instruction", "executions", "mean_probability",
        "expected_errors", "share"}`` — the view an architect uses to
        locate *where* a kernel is vulnerable.
        """
        cfg = artifacts.cfg
        simulator = FunctionalSimulator(program)
        state = MachineState()
        if setup is not None:
            setup(state)
        collector = SimulationCollector(cfg)
        simulator.run(
            state, max_instructions=max_instructions,
            listener=collector.listener,
        )
        profile = collector.profile()
        samples = collector.samples()
        self._characterize_missing(artifacts, samples)
        error_model = InstructionErrorModel(
            self.processor, program, cfg, artifacts.control_model
        )
        conditionals = error_model.all_block_probabilities(
            samples, n_samples=self.n_data_samples, seed=seed
        )
        marginals, _ = MarginalSolver(cfg, profile).solve(conditionals)
        rows: list[dict] = []
        lam_total = 0.0
        for bid, probs in marginals.items():
            executions = int(profile.block_counts[bid])
            block = cfg.block(bid)
            for k in range(probs.shape[0]):
                p_mean = float(probs[k].mean())
                contribution = executions * p_mean
                lam_total += contribution
                rows.append(
                    {
                        "block": bid,
                        "position": k,
                        "index": block.start + k,
                        "instruction": str(program[block.start + k]),
                        "executions": executions,
                        "mean_probability": p_mean,
                        "expected_errors": contribution,
                    }
                )
        for row in rows:
            row["share"] = (
                row["expected_errors"] / lam_total if lam_total > 0 else 0.0
            )
        rows.sort(key=lambda r: -r["expected_errors"])
        return rows
