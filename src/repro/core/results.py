"""Result containers and report formatting (Table 2 / Figure 3 shapes)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sta.gaussian import Gaussian
from repro.stats.chen_stein import ChenSteinBound
from repro.stats.mixture import PoissonGaussianMixture
from repro.stats.stein import SteinNormalBound

__all__ = ["ErrorRateReport"]


@dataclass(slots=True)
class ErrorRateReport:
    """Full output of one program's error-rate estimation.

    Attributes:
        program: Program name.
        total_instructions: Dynamic instructions in the simulated run.
        static_instructions: Program size in static instructions.
        basic_blocks: Number of basic blocks.
        characterized_pairs: (block, edge) pairs characterized in training.
        lam: Gaussian approximation of the error-count mean ``lambda``.
        mixture: The Poisson–Gaussian error-count distribution (Eq. 14).
        stein: Normal-approximation bound for lambda (Thm 5.2).
        chen_stein: Poisson-approximation bound (Thm 5.1).
        training_seconds: Wall-clock training time.
        simulation_seconds: Wall-clock simulation + estimation time.
    """

    program: str
    total_instructions: int
    static_instructions: int
    basic_blocks: int
    characterized_pairs: int
    lam: Gaussian
    mixture: PoissonGaussianMixture
    stein: SteinNormalBound
    chen_stein: ChenSteinBound
    training_seconds: float
    simulation_seconds: float

    # ------------------------------------------------------------------ #
    # Error-rate views
    # ------------------------------------------------------------------ #

    @property
    def error_rate_mean(self) -> float:
        """Mean program error rate, in percent (Table 2)."""
        return 100.0 * self.mixture.mean / self.total_instructions

    @property
    def error_rate_sd(self) -> float:
        """Standard deviation of the error rate, in percent (Table 2)."""
        return 100.0 * self.mixture.std / self.total_instructions

    @property
    def d_k_lambda(self) -> float:
        """Kolmogorov distance of lambda's normal approximation (Table 2).

        Reported as the *measured* distance between the lambda samples and
        the fitted Gaussian: at reproduction scale (tens of static
        instructions with large execution weights) the analytic Stein bound
        of Eq. 13 saturates, while the paper's setting (thousands of
        instructions) keeps it small; the measured distance stays
        comparable across scales.  The analytic bound is available as
        :attr:`d_k_lambda_bound`.
        """
        return self.stein.d_kolmogorov_empirical

    @property
    def d_k_lambda_bound(self) -> float:
        """The paper's Eq. 13 Stein bound on the normal approximation."""
        return self.stein.d_kolmogorov

    @property
    def d_k_rate(self) -> float:
        """Kolmogorov bound on the error rate's Poisson approximation.

        The error rate is the count divided by the fixed instruction total
        — a strictly monotone map — so the Chen–Stein count-level bound
        transfers unchanged (Table 2, last column).
        """
        return self.chen_stein.d_kolmogorov

    def error_rate_cdf(self, rates_percent) -> np.ndarray:
        """CDF of the error rate evaluated at percentages (Figure 3)."""
        rates = np.atleast_1d(np.asarray(rates_percent, dtype=float))
        counts = rates / 100.0 * self.total_instructions
        return np.asarray(self.mixture.cdf(counts))

    def error_rate_bounds(
        self, rates_percent
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bound CDF curves at percentages (Figure 3)."""
        rates = np.atleast_1d(np.asarray(rates_percent, dtype=float))
        counts = rates / 100.0 * self.total_instructions
        return self.mixture.bound_cdfs(
            counts, self.d_k_lambda, self.chen_stein.d_kolmogorov
        )

    def error_rate_grid(
        self, n_points: int = 120, span_sd: float = 5.0
    ) -> dict[str, np.ndarray]:
        """A plot-ready grid: rates (%), cdf, lower, upper."""
        lo = max(0.0, self.error_rate_mean - span_sd * self.error_rate_sd)
        hi = self.error_rate_mean + span_sd * self.error_rate_sd
        rates = np.linspace(lo, hi if hi > lo else lo + 1e-6, n_points)
        lower, upper = self.error_rate_bounds(rates)
        return {
            "rates_percent": rates,
            "cdf": self.error_rate_cdf(rates),
            "lower": lower,
            "upper": upper,
        }

    # ------------------------------------------------------------------ #

    def table_row(self) -> dict:
        """One row of the paper's Table 2."""
        return {
            "benchmark": self.program,
            "instructions": self.total_instructions,
            "basic_blocks": self.basic_blocks,
            "training_s": round(self.training_seconds, 2),
            "simulation_s": round(self.simulation_seconds, 2),
            "total_s": round(
                self.training_seconds + self.simulation_seconds, 2
            ),
            "error_rate_mean_pct": round(self.error_rate_mean, 4),
            "error_rate_sd_pct": round(self.error_rate_sd, 4),
            "d_k_lambda": round(self.d_k_lambda, 4),
            "d_k_rate": round(self.d_k_rate, 4),
        }

    def __str__(self) -> str:
        row = self.table_row()
        return (
            f"{row['benchmark']}: ER = {row['error_rate_mean_pct']:.3f}% "
            f"(SD {row['error_rate_sd_pct']:.3f}%), "
            f"d_K(lambda) <= {row['d_k_lambda']:.3f}, "
            f"d_K(R_E) <= {row['d_k_rate']:.3f}, "
            f"{row['instructions']} instructions / "
            f"{row['basic_blocks']} blocks"
        )
