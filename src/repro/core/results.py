"""Result containers and report formatting (Table 2 / Figure 3 shapes)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sta.gaussian import Gaussian
from repro.stats.chen_stein import ChenSteinBound
from repro.stats.mixture import PoissonGaussianMixture
from repro.stats.stein import SteinNormalBound

__all__ = ["ErrorRateReport"]


@dataclass(slots=True)
class ErrorRateReport:
    """Full output of one program's error-rate estimation.

    Attributes:
        program: Program name.
        total_instructions: Dynamic instructions in the simulated run.
        static_instructions: Program size in static instructions.
        basic_blocks: Number of basic blocks.
        characterized_pairs: (block, edge) pairs characterized in training.
        lam: Gaussian approximation of the error-count mean ``lambda``.
        mixture: The Poisson–Gaussian error-count distribution (Eq. 14).
        stein: Normal-approximation bound for lambda (Thm 5.2).
        chen_stein: Poisson-approximation bound (Thm 5.1).
        training_seconds: Wall-clock training time.
        simulation_seconds: Wall-clock simulation + estimation time.
        kernel_stats: Kernel-layer counters accumulated while producing
            this report (see :class:`repro.kernels.KernelStats`), or
            ``None`` when not captured.  Telemetry, like the wall-clock
            timings: serialized in the ``timing`` section so result
            payloads stay byte-stable.
        training_kernel_stats: The training phase's share of the kernel
            counters (``None`` for loaded artifacts / cache hits).  The
            period-sweep benchmark asserts on this: a warm re-train at a
            new clock period shows ``sim_calls == 0`` here.
    """

    program: str
    total_instructions: int
    static_instructions: int
    basic_blocks: int
    characterized_pairs: int
    lam: Gaussian
    mixture: PoissonGaussianMixture
    stein: SteinNormalBound
    chen_stein: ChenSteinBound
    training_seconds: float
    simulation_seconds: float
    kernel_stats: dict | None = None
    training_kernel_stats: dict | None = None

    # ------------------------------------------------------------------ #
    # Error-rate views
    # ------------------------------------------------------------------ #

    @property
    def error_rate_mean(self) -> float:
        """Mean program error rate, in percent (Table 2)."""
        return 100.0 * self.mixture.mean / self.total_instructions

    @property
    def error_rate_sd(self) -> float:
        """Standard deviation of the error rate, in percent (Table 2)."""
        return 100.0 * self.mixture.std / self.total_instructions

    @property
    def d_k_lambda(self) -> float:
        """Kolmogorov distance of lambda's normal approximation (Table 2).

        Reported as the *measured* distance between the lambda samples and
        the fitted Gaussian: at reproduction scale (tens of static
        instructions with large execution weights) the analytic Stein bound
        of Eq. 13 saturates, while the paper's setting (thousands of
        instructions) keeps it small; the measured distance stays
        comparable across scales.  The analytic bound is available as
        :attr:`d_k_lambda_bound`.
        """
        return self.stein.d_kolmogorov_empirical

    @property
    def d_k_lambda_bound(self) -> float:
        """The paper's Eq. 13 Stein bound on the normal approximation."""
        return self.stein.d_kolmogorov

    @property
    def d_k_rate(self) -> float:
        """Kolmogorov bound on the error rate's Poisson approximation.

        The error rate is the count divided by the fixed instruction total
        — a strictly monotone map — so the Chen–Stein count-level bound
        transfers unchanged (Table 2, last column).
        """
        return self.chen_stein.d_kolmogorov

    def error_rate_cdf(self, rates_percent) -> np.ndarray:
        """CDF of the error rate evaluated at percentages (Figure 3)."""
        rates = np.atleast_1d(np.asarray(rates_percent, dtype=float))
        counts = rates / 100.0 * self.total_instructions
        return np.asarray(self.mixture.cdf(counts))

    def error_rate_bounds(
        self, rates_percent
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bound CDF curves at percentages (Figure 3)."""
        rates = np.atleast_1d(np.asarray(rates_percent, dtype=float))
        counts = rates / 100.0 * self.total_instructions
        return self.mixture.bound_cdfs(
            counts, self.d_k_lambda, self.chen_stein.d_kolmogorov
        )

    def error_rate_grid(
        self, n_points: int = 120, span_sd: float = 5.0
    ) -> dict[str, np.ndarray]:
        """A plot-ready grid: rates (%), cdf, lower, upper."""
        lo = max(0.0, self.error_rate_mean - span_sd * self.error_rate_sd)
        hi = self.error_rate_mean + span_sd * self.error_rate_sd
        rates = np.linspace(lo, hi if hi > lo else lo + 1e-6, n_points)
        lower, upper = self.error_rate_bounds(rates)
        return {
            "rates_percent": rates,
            "cdf": self.error_rate_cdf(rates),
            "lower": lower,
            "upper": upper,
        }

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    #: Schema tag written by :meth:`to_json`; bump on incompatible change.
    SCHEMA = "repro.error-rate-report/1"

    def to_json(self, include_timing: bool = True) -> dict:
        """Lossless, versioned JSON document for this report.

        A strict superset of :meth:`table_row`: alongside the rounded
        Table 2 summary fields it stores the full estimator state (lambda
        Gaussian, Stein and Chen–Stein bounds, mixture quadrature), so
        :meth:`from_json` reconstructs a report whose every method —
        ``error_rate_grid``, ``error_rate_bounds`` — gives identical
        output.  Wall-clock timings go in a separate ``timing`` section
        (omitted when ``include_timing`` is false) so that result
        payloads are byte-stable across reruns, workers, and cache hits.
        """
        doc = {
            "schema": self.SCHEMA,
            "benchmark": self.program,
            "instructions": self.total_instructions,
            "static_instructions": self.static_instructions,
            "basic_blocks": self.basic_blocks,
            "characterized_pairs": self.characterized_pairs,
            "error_rate_mean_pct": round(self.error_rate_mean, 4),
            "error_rate_sd_pct": round(self.error_rate_sd, 4),
            "d_k_lambda": round(self.d_k_lambda, 4),
            "d_k_rate": round(self.d_k_rate, 4),
            "lambda": {"mean": self.lam.mean, "var": self.lam.var},
            "quadrature_points": self.mixture.quadrature_points,
            "stein": {
                "mean": self.stein.mean,
                "variance": self.stein.variance,
                "b1": self.stein.b1,
                "b2": self.stein.b2,
                "d_wasserstein": self.stein.d_wasserstein,
                "d_kolmogorov": self.stein.d_kolmogorov,
                "d_kolmogorov_conservative": (
                    self.stein.d_kolmogorov_conservative
                ),
                "d_kolmogorov_empirical": (
                    self.stein.d_kolmogorov_empirical
                ),
            },
            "chen_stein": {
                "b1_samples": [
                    float(x) for x in self.chen_stein.b1_samples
                ],
                "b2_samples": [
                    float(x) for x in self.chen_stein.b2_samples
                ],
                "b1_worst": self.chen_stein.b1_worst,
                "b2_worst": self.chen_stein.b2_worst,
                "lambda_mean": self.chen_stein.lambda_mean,
                "d_kolmogorov": self.chen_stein.d_kolmogorov,
            },
        }
        if include_timing:
            doc["timing"] = {
                "training_s": self.training_seconds,
                "simulation_s": self.simulation_seconds,
            }
            if self.kernel_stats is not None:
                doc["timing"]["kernels"] = dict(self.kernel_stats)
            if self.training_kernel_stats is not None:
                doc["timing"]["kernels_training"] = dict(
                    self.training_kernel_stats
                )
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "ErrorRateReport":
        """Rebuild a report serialized by :meth:`to_json`."""
        if doc.get("schema") != cls.SCHEMA:
            raise ValueError(
                f"unsupported report schema {doc.get('schema')!r}; "
                f"expected {cls.SCHEMA!r}"
            )
        lam = Gaussian(
            float(doc["lambda"]["mean"]), float(doc["lambda"]["var"])
        )
        s = doc["stein"]
        stein = SteinNormalBound(
            mean=float(s["mean"]),
            variance=float(s["variance"]),
            b1=float(s["b1"]),
            b2=float(s["b2"]),
            d_wasserstein=float(s["d_wasserstein"]),
            d_kolmogorov=float(s["d_kolmogorov"]),
            d_kolmogorov_conservative=float(
                s["d_kolmogorov_conservative"]
            ),
            d_kolmogorov_empirical=float(s["d_kolmogorov_empirical"]),
        )
        c = doc["chen_stein"]
        chen = ChenSteinBound(
            b1_samples=np.asarray(c["b1_samples"], dtype=float),
            b2_samples=np.asarray(c["b2_samples"], dtype=float),
            b1_worst=float(c["b1_worst"]),
            b2_worst=float(c["b2_worst"]),
            lambda_mean=float(c["lambda_mean"]),
            d_kolmogorov=float(c["d_kolmogorov"]),
        )
        timing = doc.get("timing", {})
        return cls(
            program=doc["benchmark"],
            total_instructions=int(doc["instructions"]),
            static_instructions=int(doc["static_instructions"]),
            basic_blocks=int(doc["basic_blocks"]),
            characterized_pairs=int(doc["characterized_pairs"]),
            lam=lam,
            mixture=PoissonGaussianMixture(
                lam, quadrature_points=int(doc["quadrature_points"])
            ),
            stein=stein,
            chen_stein=chen,
            training_seconds=float(timing.get("training_s", 0.0)),
            simulation_seconds=float(timing.get("simulation_s", 0.0)),
            kernel_stats=timing.get("kernels"),
            training_kernel_stats=timing.get("kernels_training"),
        )

    # ------------------------------------------------------------------ #

    def table_row(self) -> dict:
        """One row of the paper's Table 2."""
        return {
            "benchmark": self.program,
            "instructions": self.total_instructions,
            "basic_blocks": self.basic_blocks,
            "training_s": round(self.training_seconds, 2),
            "simulation_s": round(self.simulation_seconds, 2),
            "total_s": round(
                self.training_seconds + self.simulation_seconds, 2
            ),
            "error_rate_mean_pct": round(self.error_rate_mean, 4),
            "error_rate_sd_pct": round(self.error_rate_sd, 4),
            "d_k_lambda": round(self.d_k_lambda, 4),
            "d_k_rate": round(self.d_k_rate, 4),
        }

    def __str__(self) -> str:
        row = self.table_row()
        return (
            f"{row['benchmark']}: ER = {row['error_rate_mean_pct']:.3f}% "
            f"(SD {row['error_rate_sd_pct']:.3f}%), "
            f"d_K(lambda) <= {row['d_k_lambda']:.3f}, "
            f"d_K(R_E) <= {row['d_k_rate']:.3f}, "
            f"{row['instructions']} instructions / "
            f"{row['basic_blocks']} blocks"
        )
