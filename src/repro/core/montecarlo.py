"""Monte Carlo chip-sampling estimator — the baseline the paper lacked.

The paper validates its limit-theorem estimates with analytic bounds
because "our baseline simulator is too slow to handle large input
datasets" (Section 5).  At reproduction scale the brute-force baseline is
feasible: sample manufactured chips from the process-variation model, run
*deterministic* gate-level DTA per chip over the collected execution
windows, and read each chip's error rate directly.  The result is an
empirical error-rate distribution the statistical framework can be checked
against — per-chip analysis is exact (no Gaussians, no Clark, no limit
theorems), only data variation is subsampled through the window
reservoirs.

This estimator is orders of magnitude slower per program than the
framework (that is the paper's point), but it is the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.cfg.cfg import build_cfg
from repro.core.collect import SimulationCollector
from repro.core.processor import ProcessorModel
from repro.cpu.interpreter import FunctionalSimulator
from repro.cpu.pipeline import InstructionWindow
from repro.dta.algorithm2 import entry_pairs
from repro.cpu.state import MachineState
from repro.dta.graphdta import GraphDTSAnalyzer
from repro.dta.windowpool import ActivityCache, WindowAnalysisPool
from repro.logicsim.simulator import LevelizedSimulator
from repro.logicsim.stimulus import StimulusEncoder

__all__ = ["MonteCarloValidator", "MonteCarloResult"]


@dataclass(slots=True)
class MonteCarloResult:
    """Empirical per-chip error rates.

    Attributes:
        chip_error_rates: Error rate (fraction, not percent) per sampled
            chip.
        total_instructions: Dynamic instructions of the profiled run.
        windows_analyzed: Number of (block execution) windows evaluated.
    """

    chip_error_rates: np.ndarray
    total_instructions: int
    windows_analyzed: int

    @property
    def mean_percent(self) -> float:
        return 100.0 * float(self.chip_error_rates.mean())

    @property
    def sd_percent(self) -> float:
        return 100.0 * float(self.chip_error_rates.std())

    def to_json(self, benchmark: str | None = None) -> dict:
        """Versioned JSON document (the ``montecarlo --json`` payload)."""
        doc: dict = {"schema": "repro.montecarlo-result/1"}
        if benchmark is not None:
            doc["benchmark"] = benchmark
        doc.update(
            {
                "chips": int(self.chip_error_rates.shape[0]),
                "mean_percent": self.mean_percent,
                "sd_percent": self.sd_percent,
                "chip_error_rates_percent": [
                    100.0 * float(x) for x in self.chip_error_rates
                ],
                "total_instructions": self.total_instructions,
                "windows_analyzed": self.windows_analyzed,
            }
        )
        return doc


class MonteCarloValidator:
    """Brute-force per-chip error-rate measurement.

    Args:
        processor: The processor configuration (supplies netlist, library,
            variation model, and working clock period).
        n_chips: Manufactured chips to sample.
        windows_per_block: Execution windows analyzed per basic block
            (data-variation subsampling; the activity of each window is
            simulated once and reused for every chip).
        window_workers: Fork-pool width for fanning the per-window DTA
            out through :class:`WindowAnalysisPool`; ``1`` runs
            serially.  Parallel results equal serial exactly.
        executor: Window-analysis executor name (``"auto"``,
            ``"local-serial"``, ``"local-fork"``).
        activity_cache: Content-addressed activity cache; pass the
            estimator's cache to share logic simulations with the
            framework run being validated (a fresh one is built when
            omitted).
    """

    def __init__(
        self,
        processor: ProcessorModel,
        n_chips: int = 16,
        windows_per_block: int = 6,
        window_workers: int = 1,
        executor: str = "auto",
        activity_cache: ActivityCache | None = None,
    ) -> None:
        if n_chips < 2:
            raise ValueError("n_chips must be >= 2")
        if window_workers < 1:
            raise ValueError("window_workers must be >= 1")
        self.processor = processor
        self.n_chips = n_chips
        self.windows_per_block = windows_per_block
        self.window_workers = window_workers
        self.executor = executor
        self.activity_cache = (
            activity_cache if activity_cache is not None else ActivityCache()
        )
        self.graph = GraphDTSAnalyzer(
            processor.pipeline.netlist,
            processor.library,
            processor.variation,
        )

    def estimate(
        self,
        program,
        setup=None,
        max_instructions: int = 1_000_000,
        seed=0,
    ) -> MonteCarloResult:
        """Measure the per-chip error-rate distribution for a program."""
        rng = as_rng(seed)
        cfg = build_cfg(program)
        collector = SimulationCollector(cfg, reservoir_size=64)
        state = MachineState()
        if setup is not None:
            setup(state)
        FunctionalSimulator(program).run(
            state, max_instructions=max_instructions,
            listener=collector.listener,
        )
        profile = collector.profile()
        samples = collector.samples()

        runtime = _MCRuntime(
            cfg=cfg,
            scheduler=self.processor.make_scheduler(program),
            simulator=LevelizedSimulator(self.processor.pipeline.netlist),
            encoder=StimulusEncoder(self.processor.pipeline),
            cache=self.activity_cache,
            chips=self.processor.variation.sample_chips(self.n_chips, rng),
            period=self.processor.clock_period,
            setup_time=self.processor.library.setup_time,
        )

        # Window subsampling happens up front, in sorted block order, for
        # two reasons: the reservoir's first-k entries over-represent
        # early executions (reservoir sampling only randomizes *which*
        # k survive eviction, not their order), so the subsample must be
        # drawn with the seeded rng; and consuming the rng stream before
        # any fan-out keeps serial and parallel runs identical.
        plan: list[tuple[int, int, list]] = []
        for bid, block_samples in sorted(samples.items()):
            executions = int(profile.block_counts[bid])
            if executions == 0:
                continue
            if len(block_samples) > self.windows_per_block:
                picked = rng.choice(
                    len(block_samples),
                    size=self.windows_per_block,
                    replace=False,
                )
                chosen = [block_samples[i] for i in np.sort(picked)]
            else:
                chosen = list(block_samples)
            plan.append((bid, executions, chosen))

        tasks = [
            (pi, wi)
            for pi, (_, _, chosen) in enumerate(plan)
            for wi in range(len(chosen))
        ]
        pool = WindowAnalysisPool(
            self.window_workers, executor=self.executor
        )
        errors = pool.map(
            _mc_window_task, (self, runtime, plan, tasks), len(tasks)
        )

        # lambda per chip, accumulated block by block in task order —
        # the same float-addition sequence as a serial run.
        lam = np.zeros(self.n_chips)
        windows = 0
        cursor = 0
        for bid, executions, chosen in plan:
            n_i = cfg.block(bid).size
            # error fraction per chip, averaged over this block's windows.
            err = np.zeros((self.n_chips, n_i))
            for _ in chosen:
                err += errors[cursor]
                cursor += 1
                windows += 1
            err /= max(len(chosen), 1)
            lam += executions * err.sum(axis=1)
        rates = lam / max(profile.total_instructions, 1)
        return MonteCarloResult(
            chip_error_rates=rates,
            total_instructions=profile.total_instructions,
            windows_analyzed=windows,
        )

    def _window_error(self, rt: "_MCRuntime", bid: int, sample) -> np.ndarray:
        """Per-chip error counts ``(n_chips, n_i)`` for one window."""
        n_i = rt.cfg.block(bid).size
        tail = [sample.entry_prev] if sample.entry_prev else []
        window = InstructionWindow(list(tail) + list(sample.records))
        schedule = rt.scheduler.schedule(window)
        activity = rt.cache.activity(
            rt.encoder.encode_schedule(schedule), rt.simulator.activity
        )
        entries = rt.scheduler.entries(
            window, [len(tail) + k for k in range(n_i)]
        )
        # One propagation covers every sampled chip.
        arrivals = self.graph.activated_arrivals_multi(activity, rt.chips)
        n_stages = self.processor.num_stages
        err = np.zeros((self.n_chips, n_i))
        for k, entry in enumerate(entries):
            worst = np.full(self.n_chips, -np.inf)
            for s, t in entry_pairs(entry, n_stages):
                if not 0 <= t < activity.n_cycles:
                    continue
                drivers = self.graph.stage_drivers(s)
                if drivers:
                    np.maximum(
                        worst,
                        arrivals[:, t, drivers].max(axis=1),
                        out=worst,
                    )
            dts = rt.period - rt.setup_time - worst
            err[:, k] += (np.isfinite(worst) & (dts < 0.0)).astype(float)
        return err


@dataclass(slots=True)
class _MCRuntime:
    """Per-estimate machinery shared with pool workers via fork."""

    cfg: object
    scheduler: object
    simulator: LevelizedSimulator
    encoder: StimulusEncoder
    cache: ActivityCache
    chips: np.ndarray
    period: float
    setup_time: float


def _mc_window_task(context, index: int) -> np.ndarray:
    """Pool task: deterministic DTA for one (block, window) pair."""
    validator, runtime, plan, tasks = context
    pi, wi = tasks[index]
    bid, _executions, chosen = plan[pi]
    return validator._window_error(runtime, bid, chosen[wi])
