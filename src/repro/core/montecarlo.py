"""Monte Carlo chip-sampling estimator — the baseline the paper lacked.

The paper validates its limit-theorem estimates with analytic bounds
because "our baseline simulator is too slow to handle large input
datasets" (Section 5).  At reproduction scale the brute-force baseline is
feasible: sample manufactured chips from the process-variation model, run
*deterministic* gate-level DTA per chip over the collected execution
windows, and read each chip's error rate directly.  The result is an
empirical error-rate distribution the statistical framework can be checked
against — per-chip analysis is exact (no Gaussians, no Clark, no limit
theorems), only data variation is subsampled through the window
reservoirs.

This estimator is orders of magnitude slower per program than the
framework (that is the paper's point), but it is the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.cfg.cfg import build_cfg
from repro.core.collect import SimulationCollector
from repro.core.processor import ProcessorModel
from repro.cpu.interpreter import FunctionalSimulator
from repro.cpu.pipeline import InstructionWindow, PipelineScheduler
from repro.cpu.state import MachineState
from repro.dta.graphdta import GraphDTSAnalyzer
from repro.logicsim.simulator import LevelizedSimulator
from repro.logicsim.stimulus import StimulusEncoder

__all__ = ["MonteCarloValidator", "MonteCarloResult"]


@dataclass(slots=True)
class MonteCarloResult:
    """Empirical per-chip error rates.

    Attributes:
        chip_error_rates: Error rate (fraction, not percent) per sampled
            chip.
        total_instructions: Dynamic instructions of the profiled run.
        windows_analyzed: Number of (block execution) windows evaluated.
    """

    chip_error_rates: np.ndarray
    total_instructions: int
    windows_analyzed: int

    @property
    def mean_percent(self) -> float:
        return 100.0 * float(self.chip_error_rates.mean())

    @property
    def sd_percent(self) -> float:
        return 100.0 * float(self.chip_error_rates.std())


class MonteCarloValidator:
    """Brute-force per-chip error-rate measurement.

    Args:
        processor: The processor configuration (supplies netlist, library,
            variation model, and working clock period).
        n_chips: Manufactured chips to sample.
        windows_per_block: Execution windows analyzed per basic block
            (data-variation subsampling; the activity of each window is
            simulated once and reused for every chip).
    """

    def __init__(
        self,
        processor: ProcessorModel,
        n_chips: int = 16,
        windows_per_block: int = 6,
    ) -> None:
        if n_chips < 2:
            raise ValueError("n_chips must be >= 2")
        self.processor = processor
        self.n_chips = n_chips
        self.windows_per_block = windows_per_block
        self.graph = GraphDTSAnalyzer(
            processor.pipeline.netlist,
            processor.library,
            processor.variation,
        )

    def estimate(
        self,
        program,
        setup=None,
        max_instructions: int = 1_000_000,
        seed=0,
    ) -> MonteCarloResult:
        """Measure the per-chip error-rate distribution for a program."""
        rng = as_rng(seed)
        cfg = build_cfg(program)
        collector = SimulationCollector(cfg, reservoir_size=64)
        state = MachineState()
        if setup is not None:
            setup(state)
        FunctionalSimulator(program).run(
            state, max_instructions=max_instructions,
            listener=collector.listener,
        )
        profile = collector.profile()
        samples = collector.samples()

        scheduler = PipelineScheduler(
            program, num_stages=self.processor.pipeline.num_stages
        )
        simulator = LevelizedSimulator(self.processor.pipeline.netlist)
        encoder = StimulusEncoder(self.processor.pipeline)
        period = self.processor.clock_period
        setup_time = self.processor.library.setup_time
        chips = self.processor.variation.sample_chips(self.n_chips, rng)

        # lambda per chip, accumulated block by block.
        lam = np.zeros(self.n_chips)
        windows = 0
        for bid, block_samples in sorted(samples.items()):
            executions = int(profile.block_counts[bid])
            if executions == 0:
                continue
            chosen = block_samples[: self.windows_per_block]
            n_i = cfg.block(bid).size
            # error fraction per chip, averaged over this block's windows.
            err = np.zeros((self.n_chips, n_i))
            for sample in chosen:
                tail = [sample.entry_prev] if sample.entry_prev else []
                window = InstructionWindow(
                    list(tail) + list(sample.records)
                )
                schedule = scheduler.schedule(window)
                activity = simulator.activity(
                    encoder.encode_schedule(schedule)
                )
                entries = [len(tail) + k for k in range(n_i)]
                # One propagation covers every sampled chip.
                arrivals = self.graph.activated_arrivals_multi(
                    activity, chips
                )
                n_stages = self.processor.pipeline.num_stages
                for k, entry in enumerate(entries):
                    worst = np.full(self.n_chips, -np.inf)
                    for s in range(n_stages):
                        t = entry + s
                        if not 0 <= t < activity.n_cycles:
                            continue
                        drivers = self.graph.stage_drivers(s)
                        if drivers:
                            np.maximum(
                                worst,
                                arrivals[:, t, drivers].max(axis=1),
                                out=worst,
                            )
                    dts = period - setup_time - worst
                    err[:, k] += (np.isfinite(worst) & (dts < 0.0)).astype(
                        float
                    )
                windows += 1
            err /= max(len(chosen), 1)
            lam += executions * err.sum(axis=1)
        rates = lam / max(profile.total_instructions, 1)
        return MonteCarloResult(
            chip_error_rates=rates,
            total_instructions=profile.total_instructions,
            windows_analyzed=windows,
        )
