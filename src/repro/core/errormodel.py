"""Instruction error probabilities (Section 4.1).

Combines the two characterized halves of an instruction's DTS — the
per-(block, edge, position) control-network Gaussian and the per-dynamic-
instance datapath Gaussian predicted by the trained timing model — into the
instruction's DTS via a Clark minimum, and converts DTS to error
probability ``p = P(DTS < 0)`` under process variation.

Each sampled block execution yields one *joint* row of conditional
probabilities: p^c from the observed pipeline flow, p^e from the
error-correction emulation (flushed previous state).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sstats

from repro._util import as_rng
from repro.cfg.marginal import BlockProbabilities
from repro.core.collect import BlockExecutionSample
from repro.dta.datapath import FEATURE_NAMES, extract_features
from repro.sta.clark import clark_min_arrays

__all__ = ["InstructionErrorModel"]

#: Stand-in mean for an absent (never-risky) slack contribution, in ps.
_SAFE_SLACK = 1.0e9


class InstructionErrorModel:
    """Turns collected execution samples into conditional probabilities.

    Args:
        processor: The :class:`~repro.core.processor.ProcessorModel`.
        program: The program under analysis.
        cfg: Its CFG.
        control_model: Characterized control timing
            (:class:`~repro.dta.characterize.ControlTimingModel`).
    """

    def __init__(self, processor, program, cfg, control_model) -> None:
        self.processor = processor
        self.program = program
        self.cfg = cfg
        self.control_model = control_model
        self.datapath = processor.datapath_model
        self.clock_period = processor.clock_period
        self.setup_time = processor.library.setup_time

    # ------------------------------------------------------------------ #

    @staticmethod
    def _probability(mean: np.ndarray, var: np.ndarray) -> np.ndarray:
        """``P(slack < 0)`` elementwise, handling zero variance."""
        sd = np.sqrt(var)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = np.where(sd > 0, -mean / np.where(sd > 0, sd, 1.0), 0.0)
        p = sstats.norm.cdf(z)
        p = np.where(sd > 0, p, (mean < 0).astype(float))
        return np.clip(p, 0.0, 1.0)

    def _control_arrays(
        self, bid: int, k: int, preds: list[int], corrected: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample control slack (mean, var) for instruction k."""
        means = np.empty(len(preds))
        variances = np.empty(len(preds))
        for i, pred in enumerate(preds):
            normal, corr = self.control_model.get(bid, pred, k)
            g = corr if corrected else normal
            if g is None:
                means[i] = _SAFE_SLACK
                variances[i] = 0.0
            else:
                means[i] = g.mean
                variances[i] = g.var
        return means, variances

    def block_probabilities(
        self,
        bid: int,
        samples: list[BlockExecutionSample],
        n_samples: int,
        seed=0,
    ) -> BlockProbabilities:
        """Conditional probability rows ``(n_i, n_samples)`` for a block.

        Executions are resampled with replacement to the common sample
        count; each resampled execution stays *joint* across the block's
        instructions (preserving adjacent-instruction correlation).
        """
        if not samples:
            raise ValueError(f"block {bid} has no execution samples")
        block = self.cfg.block(bid)
        rng = as_rng(seed + bid)
        chosen = [
            samples[int(i)]
            for i in rng.integers(len(samples), size=n_samples)
        ]
        preds = [s.pred for s in chosen]
        n_i = block.size
        pc = np.empty((n_i, n_samples))
        pe = np.empty((n_i, n_samples))
        g_frac = self.processor.variation.config.global_fraction
        for k in range(n_i):
            ins = self.program[block.start + k]
            klass = ins.op_class
            n_features = len(FEATURE_NAMES)
            feats_c = np.empty((n_samples, n_features))
            feats_e = np.empty((n_samples, n_features))
            for s, sample in enumerate(chosen):
                rec = sample.records[k]
                prev = sample.records[k - 1] if k > 0 else sample.entry_prev
                feats_c[s] = extract_features(ins, rec, prev)
                # Correction emulation: previous pipeline state flushed.
                feats_e[s] = extract_features(ins, rec, None)
            dp_mean_c, dp_sd_c = self.datapath.predict_arrival(klass, feats_c)
            dp_mean_e, dp_sd_e = self.datapath.predict_arrival(klass, feats_e)
            slack_base = self.clock_period - self.setup_time
            for corrected, dp_mean, dp_sd, out in (
                (False, dp_mean_c, dp_sd_c, pc),
                (True, dp_mean_e, dp_sd_e, pe),
            ):
                ctrl_mean, ctrl_var = self._control_arrays(
                    bid, k, preds, corrected
                )
                dpm = slack_base - dp_mean
                dpv = dp_sd**2
                cov = g_frac * np.sqrt(ctrl_var) * dp_sd
                mean, var = clark_min_arrays(ctrl_mean, ctrl_var, dpm, dpv, cov)
                out[k] = self._probability(mean, var)
        return BlockProbabilities(pc=pc, pe=pe)

    def all_block_probabilities(
        self,
        samples: dict[int, list[BlockExecutionSample]],
        n_samples: int = 128,
        seed=0,
    ) -> dict[int, BlockProbabilities]:
        """Conditional probabilities for every sampled block."""
        return {
            bid: self.block_probabilities(bid, blk, n_samples, seed)
            for bid, blk in sorted(samples.items())
        }
