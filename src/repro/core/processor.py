"""The processor-under-analysis bundle.

Collects everything hardware-side in one object: the synthetic pipeline
netlist (LEON3 integer-unit stand-in), the timing library, the correlated
process-variation model, the STA/SSTA engines, the DTA analyzers split into
control and data endpoint sets, the error-correction scheme, and the
operating frequencies (guardbanded baseline and speculative working point,
Section 6.1).
"""

from __future__ import annotations

from functools import cached_property

from repro._util import check_positive
from repro.core.family import CoreFamily, resolve_core_family
from repro.cpu.correction import CorrectionScheme, ReplayHalfFrequency
from repro.dta.algorithm1 import StageDTSAnalyzer
from repro.dta.algorithm2 import InstructionDTSAnalyzer
from repro.dta.datapath import DatapathTimingModel
from repro.dta.trainer import DatapathTrainer
from repro.netlist.gates import EndpointKind
from repro.netlist.generator import PipelineConfig, PipelineNetlist, generate_pipeline
from repro.netlist.library import TimingLibrary
from repro.perf.model import TSPerformanceModel
from repro.sta.sta import StaticTimingAnalysis
from repro.sta.ssta import StatisticalTimingAnalysis
from repro.variation.process import ProcessVariationModel, VariationConfig

__all__ = ["ProcessorModel", "default_processor"]


class ProcessorModel:
    """A timing-speculative processor configuration.

    Args:
        pipeline: Generated pipeline netlist (default configuration when
            omitted).
        library: Timing library.
        variation_config: Process-variation decomposition parameters.
        scheme: Error-correction scheme (replay at half frequency by
            default, as in Section 6.1).
        speculation: Working-frequency ratio over the guardbanded baseline
            (1.15 in the paper).
        yield_quantile: SSTA timing-yield target defining the baseline
            frequency.
        droop_guardband: Delay derate applied when computing the baseline
            frequency, modelling the low-voltage corner PrimeTime signs off
            at (the paper guardbands for a 10% droop at 0.81 V while the
            chip runs at 0.9 V).  The derate inflates the baseline period,
            which is exactly the pessimism timing speculation reclaims.
        clock_period_override: Explicit speculative clock period (ps),
            bypassing the baseline/speculation derivation (for sweeps).
        paths_per_endpoint: Path-enumeration depth for the DTA analyzers.
        core_family: The pipeline organization under analysis — a
            registered family name, a :class:`CoreFamily` descriptor, or
            ``None`` for the default in-order core.  The family supplies
            the netlist generator (when ``pipeline`` is omitted), the
            occupancy scheduler, and the correction-penalty composition.
    """

    def __init__(
        self,
        pipeline: PipelineNetlist | None = None,
        library: TimingLibrary | None = None,
        variation_config: VariationConfig | None = None,
        scheme: CorrectionScheme | None = None,
        speculation: float = 1.15,
        yield_quantile: float = 0.9987,
        droop_guardband: float = 1.04,
        clock_period_override: float | None = None,
        paths_per_endpoint: int = 12,
        core_family: "CoreFamily | str | None" = None,
    ) -> None:
        check_positive("speculation", speculation)
        check_positive("droop_guardband", droop_guardband)
        self.core_family = resolve_core_family(core_family)
        self.pipeline = pipeline or self.core_family.build_netlist(None)
        self.library = library or TimingLibrary()
        self.variation = ProcessVariationModel(
            self.pipeline.netlist, self.library, variation_config
        )
        self.scheme = scheme or ReplayHalfFrequency()
        self.speculation = speculation
        self.yield_quantile = yield_quantile
        self.droop_guardband = droop_guardband
        self.clock_period_override = clock_period_override
        self.paths_per_endpoint = paths_per_endpoint

    # ------------------------------------------------------------------ #
    # Timing engines
    # ------------------------------------------------------------------ #

    @cached_property
    def sta(self) -> StaticTimingAnalysis:
        return StaticTimingAnalysis(self.pipeline.netlist, self.library)

    @cached_property
    def ssta(self) -> StatisticalTimingAnalysis:
        return StatisticalTimingAnalysis(
            self.pipeline.netlist, self.library, self.variation
        )

    @cached_property
    def baseline_period(self) -> float:
        """Guardbanded (droop-derated SSTA timing-yield) clock period, ps."""
        return self.droop_guardband * self.ssta.min_clock_period(
            self.yield_quantile
        )

    @property
    def baseline_frequency_mhz(self) -> float:
        return 1.0e6 / self.baseline_period

    @property
    def clock_period(self) -> float:
        """Speculative working clock period in ps."""
        if self.clock_period_override is not None:
            return self.clock_period_override
        return self.baseline_period / self.speculation

    @property
    def working_frequency_mhz(self) -> float:
        return 1.0e6 / self.clock_period

    # ------------------------------------------------------------------ #
    # Family-derived structure
    # ------------------------------------------------------------------ #

    @property
    def num_stages(self) -> int:
        """Pipeline depth — the single accessor every depth consumer
        (performance, penalties, describe, derive) goes through."""
        return self.pipeline.num_stages

    @property
    def penalty_cycles(self) -> float:
        """Cycles lost per corrected error: the scheme's replay/flush
        penalty composed with the family's recovery cost."""
        return self.core_family.correction_penalty(
            self.scheme, self.num_stages
        )

    def make_scheduler(self, program):
        """The family's occupancy scheduler for ``program``."""
        return self.core_family.make_scheduler(program, self.pipeline)

    # ------------------------------------------------------------------ #
    # DTA analyzers
    # ------------------------------------------------------------------ #

    @cached_property
    def control_analyzer(self) -> InstructionDTSAnalyzer:
        """Algorithm 2 over the control endpoints (Section 4)."""
        return InstructionDTSAnalyzer(
            StageDTSAnalyzer(
                self.pipeline.netlist,
                self.library,
                self.variation,
                paths_per_endpoint=self.paths_per_endpoint,
                endpoint_kind=EndpointKind.CONTROL,
            )
        )

    @cached_property
    def data_analyzer(self) -> InstructionDTSAnalyzer:
        """Algorithm 2 over the data endpoints (datapath training)."""
        return InstructionDTSAnalyzer(
            StageDTSAnalyzer(
                self.pipeline.netlist,
                self.library,
                self.variation,
                paths_per_endpoint=self.paths_per_endpoint,
                endpoint_kind=EndpointKind.DATA,
            )
        )

    # ------------------------------------------------------------------ #
    # Shared models
    # ------------------------------------------------------------------ #

    @cached_property
    def datapath_model(self) -> DatapathTimingModel:
        """Trained datapath timing model (fitted once per processor)."""
        trainer = DatapathTrainer(
            self.pipeline,
            self.data_analyzer,
            self.library.setup_time,
            scheduler_factory=self.core_family.make_scheduler,
        )
        model, _ = trainer.train()
        return model

    @cached_property
    def performance(self) -> TSPerformanceModel:
        return self.core_family.make_performance(
            self.speculation, self.scheme, self.num_stages
        )

    # ------------------------------------------------------------------ #
    # Derived operating points
    # ------------------------------------------------------------------ #

    #: Cached engines that do not depend on the clock period and are
    #: therefore safe to share between derived operating points.
    _PERIOD_INDEPENDENT = (
        "sta",
        "ssta",
        "control_analyzer",
        "data_analyzer",
        "datapath_model",
    )

    def derive(
        self,
        speculation: float | None = None,
        clock_period_override: float | None = None,
        scheme: CorrectionScheme | None = None,
        yield_quantile: float | None = None,
        droop_guardband: float | None = None,
    ) -> "ProcessorModel":
        """A new operating point sharing this processor's trained engines.

        Sweeps re-analyze the same hardware at many clock periods; the
        netlist, variation model, (S)STA engines, DTA analyzers, and the
        trained datapath model are all period-independent, so a derived
        processor inherits whichever of them this one has already built
        and only re-derives the period-dependent quantities.  This is the
        sanctioned replacement for the old ``__dict__.update`` sharing
        hack.

        Args:
            speculation: New working-frequency ratio (default: keep).
            clock_period_override: Explicit speculative period in ps; not
                inherited — pass it again if the derived point needs one.
            scheme: New correction scheme (default: keep).
            yield_quantile: New timing-yield target (default: keep).
            droop_guardband: New baseline derate (default: keep).
        """
        clone = ProcessorModel(
            pipeline=self.pipeline,
            library=self.library,
            variation_config=self.variation.config,
            scheme=self.scheme if scheme is None else scheme,
            speculation=(
                self.speculation if speculation is None else speculation
            ),
            yield_quantile=(
                self.yield_quantile
                if yield_quantile is None
                else yield_quantile
            ),
            droop_guardband=(
                self.droop_guardband
                if droop_guardband is None
                else droop_guardband
            ),
            clock_period_override=clock_period_override,
            paths_per_endpoint=self.paths_per_endpoint,
            core_family=self.core_family,
        )
        # Share the sampled variation model itself (the constructor built
        # an equivalent one; the engines below reference this instance).
        clone.variation = self.variation
        for name in self._PERIOD_INDEPENDENT:
            if name in self.__dict__:
                clone.__dict__[name] = self.__dict__[name]
        if (
            "baseline_period" in self.__dict__
            and clone.yield_quantile == self.yield_quantile
            and clone.droop_guardband == self.droop_guardband
        ):
            clone.__dict__["baseline_period"] = self.__dict__[
                "baseline_period"
            ]
        return clone

    def control_data_covariance(self, sigma_c: float, sigma_d: float) -> float:
        """Approximate slack covariance between control and data Gaussians.

        The control network and datapath share the chip-global variation
        component; their spatial components are largely independent
        (different placement regions).
        """
        return self.variation.config.global_fraction * sigma_c * sigma_d

    def describe(self) -> dict:
        """Operating-point summary (the Section 6.1 numbers)."""
        return {
            "core_family": self.core_family.name,
            "gates": len(self.pipeline.netlist),
            "stages": self.num_stages,
            "baseline_frequency_mhz": self.baseline_frequency_mhz,
            "working_frequency_mhz": self.working_frequency_mhz,
            "speculation": self.speculation,
            "clock_period_ps": self.clock_period,
            "correction": self.scheme.name,
            "penalty_cycles": self.penalty_cycles,
        }


def default_processor(**overrides) -> ProcessorModel:
    """The paper's experimental configuration (Section 6.1 analogue)."""
    return ProcessorModel(**overrides)
