"""Content-addressed on-disk cache for trained estimation artifacts.

Three artifact kinds are cached, mirroring the expensive phases of the
framework:

* **control** — a characterized :class:`ControlTimingModel` (via
  ``TrainingArtifacts.to_doc``), keyed by everything the characterization
  depends on: the program bytes, the pipeline/variation configuration,
  the speculative clock period, the correction scheme, and the training
  dataset + budget.
* **datapath** — a trained :class:`DatapathTimingModel`, keyed by the
  pipeline/variation configuration only: the datapath regression is
  *period-independent*, so one entry is shared by every operating point
  of a sweep — the FATE-style hierarchical reuse that makes large batch
  runs cheap.
* **windows** — period-independent window artifacts (content-addressed
  activity traces plus the path-moment registry, via
  ``ErrorRateEstimator.window_doc``), keyed like **control** but without
  the clock period: when the control entry misses because only the
  period changed (a frequency sweep), the re-characterization preloads
  this entry and runs zero logic simulations.

Keys are SHA-256 digests of a canonical JSON document of the inputs;
entries live at ``<root>/<kind>/<key[:2]>/<key>.json`` and are written
atomically (temp file + rename) so concurrent pool workers can share one
cache directory without locking: double writes are idempotent, torn
reads impossible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.cpu.program import Program

__all__ = [
    "ArtifactCache",
    "stable_digest",
    "program_fingerprint",
    "control_cache_key",
    "datapath_cache_key",
    "window_cache_key",
]


def stable_digest(doc: dict) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``doc``."""
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def program_fingerprint(program: Program) -> str:
    """Content hash of a program: its name plus full disassembly.

    The listing covers every instruction field and label, so two
    programs with the same fingerprint characterize identically.
    """
    blob = f"{program.name}\n{program.listing()}"
    return hashlib.sha256(blob.encode()).hexdigest()


def _config_doc(config) -> dict:
    """A dataclass config as a plain sortable dict."""
    return dataclasses.asdict(config)


def control_cache_key(
    program: Program,
    *,
    pipeline_config,
    variation_config,
    scheme_name: str,
    clock_period: float,
    paths_per_endpoint: int,
    train_scale: str,
    train_seed: int | None,
    train_instructions: int,
) -> str:
    """Cache key for a characterized control timing model."""
    return stable_digest(
        {
            "kind": "control/1",
            "program": program_fingerprint(program),
            "pipeline": _config_doc(pipeline_config),
            "variation": _config_doc(variation_config),
            "scheme": scheme_name,
            # repr() keeps full float precision; a different period is a
            # different (and incompatible) characterization.
            "clock_period": repr(float(clock_period)),
            "paths_per_endpoint": paths_per_endpoint,
            "train_scale": train_scale,
            "train_seed": train_seed,
            "train_instructions": train_instructions,
        }
    )


def window_cache_key(
    program: Program,
    *,
    pipeline_config,
    variation_config,
    scheme_name: str,
    paths_per_endpoint: int,
    train_scale: str,
    train_seed: int | None,
    train_instructions: int,
) -> str:
    """Cache key for period-independent window artifacts.

    Everything in the control key *except* the clock period: activity
    traces and path moments do not depend on it, so one entry serves
    every operating point of a frequency sweep.
    """
    return stable_digest(
        {
            "kind": "windows/1",
            "program": program_fingerprint(program),
            "pipeline": _config_doc(pipeline_config),
            "variation": _config_doc(variation_config),
            "scheme": scheme_name,
            "paths_per_endpoint": paths_per_endpoint,
            "train_scale": train_scale,
            "train_seed": train_seed,
            "train_instructions": train_instructions,
        }
    )


def datapath_cache_key(
    *,
    pipeline_config,
    variation_config,
    paths_per_endpoint: int,
) -> str:
    """Cache key for the (period-independent) datapath timing model."""
    return stable_digest(
        {
            "kind": "datapath/1",
            "pipeline": _config_doc(pipeline_config),
            "variation": _config_doc(variation_config),
            "paths_per_endpoint": paths_per_endpoint,
        }
    )


class ArtifactCache:
    """A directory of content-addressed JSON artifact documents."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path_for(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.json"

    def get(self, kind: str, key: str) -> dict | None:
        """The stored document, or ``None`` on miss or corrupt entry."""
        path = self.path_for(kind, key)
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, kind: str, key: str, doc: dict) -> Path:
        """Atomically store ``doc``; concurrent writers are safe."""
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, kind_key: tuple[str, str]) -> bool:
        kind, key = kind_key
        return self.path_for(kind, key).exists()

    def entries(self) -> list[Path]:
        """All cached artifact files (for inspection and tests)."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/??/*.json"))
