"""Content-addressed on-disk cache for trained estimation artifacts.

Three artifact kinds are cached, mirroring the expensive phases of the
framework:

* **control** — a characterized :class:`ControlTimingModel` (via
  ``TrainingArtifacts.to_doc``), keyed by everything the characterization
  depends on: the program bytes, the pipeline/variation configuration,
  the speculative clock period, the correction scheme, and the training
  dataset + budget.
* **datapath** — a trained :class:`DatapathTimingModel`, keyed by the
  pipeline/variation configuration only: the datapath regression is
  *period-independent*, so one entry is shared by every operating point
  of a sweep — the FATE-style hierarchical reuse that makes large batch
  runs cheap.
* **windows** — period-independent window artifacts (content-addressed
  activity traces plus the path-moment registry, via
  ``ErrorRateEstimator.window_doc``), keyed like **control** but without
  the clock period: when the control entry misses because only the
  period changed (a frequency sweep), the re-characterization preloads
  this entry and runs zero logic simulations.

The keying and persistence now live in the unified pipeline layers —
:mod:`repro.pipeline.ir` (input IRs and their content hashes) and
:mod:`repro.pipeline.store` (the content-addressed
:class:`~repro.pipeline.store.ArtifactStore`).  This module re-exports
the key functions and keeps :class:`ArtifactCache` as the raw-key view
of a store: entries live at ``<root>/<kind>/<key[:2]>/<key>.json``,
writes are atomic (temp file + rename) so concurrent pool workers can
share one cache directory without locking, and a corrupt or truncated
entry is deleted and treated as a miss.
"""

from __future__ import annotations

from pathlib import Path

from repro.pipeline.ir import (
    control_cache_key,
    datapath_cache_key,
    program_fingerprint,
    window_cache_key,
)
from repro.pipeline.store import ArtifactStore, stable_digest

__all__ = [
    "ArtifactCache",
    "stable_digest",
    "program_fingerprint",
    "control_cache_key",
    "datapath_cache_key",
    "window_cache_key",
]


class ArtifactCache:
    """A directory of content-addressed JSON artifact documents.

    A thin raw-key facade over :class:`~repro.pipeline.store.ArtifactStore`
    for callers that compute their own keys (the legacy engine surface
    and the key-function tests); the staged pipeline composes its keys
    with the stage name and backend identity instead.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._store = ArtifactStore(root)

    def path_for(self, kind: str, key: str) -> Path:
        return self._store.path_for(kind, key)

    def get(self, kind: str, key: str) -> dict | None:
        """The stored document, or ``None`` on a miss.

        A corrupt or truncated entry is deleted and reported as a miss,
        so the caller's recompute-and-put repopulates it cleanly.
        """
        return self._store.get_entry(kind, key)

    def put(self, kind: str, key: str, doc: dict) -> Path:
        """Atomically store ``doc``; concurrent writers are safe."""
        return self._store.put_entry(kind, key, doc)

    def __contains__(self, kind_key: tuple[str, str]) -> bool:
        return kind_key in self._store

    def entries(self) -> list[Path]:
        """All cached artifact files (for inspection and tests)."""
        return self._store.entries()
