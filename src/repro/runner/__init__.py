"""Parallel batch estimation with trained-artifact caching.

The runner turns the one-job framework API into a production batch
surface: express each (workload × operating point) job as an
:class:`~repro.core.request.EstimationRequest`, hand the batch to an
:class:`EstimationEngine`, and get a :class:`RunSummary` of per-job
reports plus telemetry back.  Trained artifacts (control timing models,
the shared datapath model) round-trip through a content-addressed
:class:`ArtifactCache`, so repeated runs — sweeps over operating points,
warm re-runs of the full suite — skip their training phases entirely.

Quickstart::

    from repro.runner import EstimationEngine, EstimationRequest

    engine = EstimationEngine(max_workers=4, cache_dir=".repro-cache")
    summary = engine.run(
        [EstimationRequest(workload=n) for n in ("bitcount", "dijkstra")]
    )
    for result in summary.succeeded:
        print(result.report, "cache hit" if result.cache_hit else "")
    print(summary.describe())
"""

from repro.core.request import EstimationRequest
from repro.runner.cache import (
    ArtifactCache,
    control_cache_key,
    datapath_cache_key,
    program_fingerprint,
    stable_digest,
    window_cache_key,
)
from repro.runner.engine import (
    EstimationEngine,
    JobResult,
    ProcessorConfig,
    RunSummary,
)

__all__ = [
    "ArtifactCache",
    "EstimationEngine",
    "EstimationRequest",
    "JobResult",
    "ProcessorConfig",
    "RunSummary",
    "control_cache_key",
    "datapath_cache_key",
    "program_fingerprint",
    "stable_digest",
    "window_cache_key",
]
