"""The parallel batch estimation engine.

An :class:`EstimationEngine` executes a batch of
:class:`~repro.core.request.EstimationRequest` jobs — (workload ×
operating point) pairs — on a ``concurrent.futures`` process pool.
Per-job work runs through the staged
:class:`~repro.pipeline.pipeline.EstimationPipeline` backed by the
content-addressed :class:`~repro.pipeline.store.ArtifactStore`; the
engine's job is batching, process fan-out, and telemetry aggregation.
Everything shared is either derived once in the parent before forking
(the base processor, its SSTA baseline period, the period-independent
datapath model — all inherited by the workers through fork's
copy-on-write memory) or read from the store.

Design points:

* **Determinism** — every job carries an explicit or identity-derived
  seed, results are returned in request order, and reports cross the
  process boundary as their versioned JSON documents, so a parallel run
  is byte-identical to a serial one.
* **Graceful degradation** — a job that raises is captured as a failed
  :class:`JobResult` with its traceback instead of killing the batch;
  the pool falls back to in-process execution when ``max_workers <= 1``,
  when there is a single job, or when the platform cannot fork.
* **Telemetry** — each result records train/estimate wall time, the
  simulated instruction count, cache hit/miss, per-stage events, and the
  worker PID; :class:`RunSummary` aggregates them.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.processor import ProcessorModel
from repro.core.request import EstimationRequest
from repro.core.results import ErrorRateReport
from repro.kernels import KernelStats
from repro.pipeline.ir import (
    CORRECTION_SCHEMES,
    DatapathInputIR,
    ProcessorConfig,
)
from repro.pipeline.registry import REGISTRY
from repro.pipeline.store import ArtifactStore
from repro.pipeline.stages import base_processor as _base_processor

__all__ = [
    "ProcessorConfig",
    "CORRECTION_SCHEMES",
    "JobResult",
    "RunSummary",
    "EstimationEngine",
]


@dataclass(slots=True)
class JobResult:
    """Outcome + telemetry of one estimation job."""

    request: EstimationRequest
    status: str  # "ok" | "error"
    report: ErrorRateReport | None = None
    error: str | None = None
    cache_hit: bool = False
    train_seconds: float = 0.0
    estimate_seconds: float = 0.0
    instructions: int = 0
    worker: int = 0
    seed: int = 0
    speculation: float = 0.0
    working_frequency_mhz: float | None = None
    net_performance_percent: float | None = None
    #: Kernel-layer counters for this job (see :class:`KernelStats`).
    kernel_stats: dict | None = None
    #: Per-stage pipeline events (``StageEvent.to_json`` documents).
    stages: list[dict] | None = None
    #: Whether this job ran through the batched operating-point grid.
    grid: bool = False
    #: Grid reuse: this point's training / evaluation functional
    #: simulation was shared with another point instead of re-run.
    train_sim_skipped: bool = False
    eval_sim_skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        doc = {
            "workload": self.request.workload_name,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "train_seconds": round(self.train_seconds, 3),
            "estimate_seconds": round(self.estimate_seconds, 3),
            "instructions": self.instructions,
            "worker": self.worker,
            "seed": self.seed,
            "speculation": self.speculation,
            "working_frequency_mhz": self.working_frequency_mhz,
            "net_performance_percent": self.net_performance_percent,
            "kernel_stats": self.kernel_stats,
        }
        if self.grid:
            doc["grid"] = True
            doc["train_sim_skipped"] = self.train_sim_skipped
            doc["eval_sim_skipped"] = self.eval_sim_skipped
        if self.stages is not None:
            doc["stages"] = self.stages
        if self.report is not None:
            doc["report"] = self.report.to_json()
        if self.error is not None:
            doc["error"] = self.error
        return doc


@dataclass(slots=True)
class RunSummary:
    """Aggregate outcome of one engine batch."""

    results: list[JobResult]
    wall_seconds: float
    max_workers: int
    parallel: bool
    cache_dir: str | None = None
    #: Intra-job window-analysis pool width the engine was configured
    #: with (pinned to 1 inside jobs when the engine itself ran parallel).
    window_workers: int = 1
    #: Window-analysis executor the engine was configured with (jobs are
    #: pinned to ``local-serial`` when the engine itself ran parallel).
    executor: str = "auto"
    #: ``None`` when caching is disabled; otherwise whether the shared
    #: datapath model came from the cache.
    datapath_cache_hit: bool | None = None
    #: Homogeneous request groups evaluated through the batched
    #: operating-point grid this run.
    grid_batches: int = 0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def succeeded(self) -> list[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache_hit)

    @property
    def training_runs(self) -> int:
        """Jobs that actually executed a control training phase."""
        return sum(1 for r in self.results if r.ok and not r.cache_hit)

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.results)

    def reports(self) -> list[ErrorRateReport]:
        """Successful reports in request order."""
        return [r.report for r in self.results if r.ok]

    def kernel_totals(self) -> dict:
        """Kernel-layer counters summed over every job in the batch."""
        return KernelStats.aggregate(
            r.kernel_stats for r in self.results
        ).to_json()

    def to_json(self) -> dict:
        return {
            "schema": "repro.run-summary/1",
            "jobs": len(self.results),
            "succeeded": len(self.succeeded),
            "failed": len(self.failed),
            "cache_hits": self.cache_hits,
            "training_runs": self.training_runs,
            "datapath_cache_hit": self.datapath_cache_hit,
            "total_instructions": self.total_instructions,
            "wall_seconds": round(self.wall_seconds, 3),
            "max_workers": self.max_workers,
            "parallel": self.parallel,
            "window_workers": self.window_workers,
            "executor": self.executor,
            "cache_dir": self.cache_dir,
            "grid_batches": self.grid_batches,
            "kernels": self.kernel_totals(),
            "results": [r.to_json() for r in self.results],
        }

    def describe(self) -> str:
        """One-line telemetry summary for CLI output."""
        grid = (
            f", {self.grid_batches} grid batches" if self.grid_batches else ""
        )
        return (
            f"{len(self.results)} jobs, {len(self.succeeded)} ok, "
            f"{len(self.failed)} failed, {self.cache_hits} cache hits, "
            f"{self.training_runs} training runs{grid}, "
            f"{self.total_instructions:,} instructions, "
            f"{self.wall_seconds:.1f}s wall "
            f"({'parallel x' + str(self.max_workers) if self.parallel else 'in-process'})"
        )


# --------------------------------------------------------------------- #
# Worker-side execution
# --------------------------------------------------------------------- #


def _job_pipeline(config: ProcessorConfig, payload: dict):
    """The per-job staged pipeline for one picklable payload."""
    from repro.pipeline.pipeline import EstimationPipeline

    window_workers = payload.get("window_workers", 1)
    cache_dir = payload.get("cache_dir")
    return EstimationPipeline(
        config,
        backends={
            "dta": "windowpool" if window_workers > 1 else "kernels"
        },
        store=ArtifactStore(cache_dir) if cache_dir else None,
        n_data_samples=payload["n_data_samples"],
        window_workers=window_workers,
        executor=payload.get("executor", "auto"),
    )


def _doc_from_result(result) -> dict:
    """The picklable job document for one successful PipelineResult."""
    processor = result.processor
    report = result.report
    out = {
        "worker": os.getpid(),
        "status": "ok",
        "cache_hit": result.cache_hit,
    }
    if result.windows_preloaded is not None:
        out["windows_preloaded"] = result.windows_preloaded
    out["train_seconds"] = result.train_seconds
    out["estimate_seconds"] = result.estimate_seconds
    out["stages"] = [event.to_json() for event in result.events]
    out["report"] = report.to_json()
    out["instructions"] = report.total_instructions
    out["kernel_stats"] = report.kernel_stats
    out["seed"] = result.seed
    out["speculation"] = processor.speculation
    out["working_frequency_mhz"] = processor.working_frequency_mhz
    out["net_performance_percent"] = (
        processor.performance.improvement_percent(
            report.error_rate_mean / 100.0
        )
    )
    return out


def _execute_payload(payload: dict) -> dict:
    """Run one job; never raises — failures become error documents.

    Executed either in a pool worker or in-process; the return value is
    a plain picklable dict (reports travel as their JSON documents).
    """
    request: EstimationRequest = payload["request"]
    config: ProcessorConfig = payload["config"]
    try:
        pipeline = _job_pipeline(config, payload)
        return _doc_from_result(pipeline.execute(request))
    except Exception:
        return {
            "worker": os.getpid(),
            "status": "error",
            "cache_hit": False,
            "error": traceback.format_exc(),
        }


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #


class EstimationEngine:
    """Batch executor for estimation requests.

    Args:
        config: Processor recipe shared by every job (default: the
            paper's Section 6.1 configuration).
        max_workers: Process-pool width; ``1`` executes in-process.
        cache_dir: Artifact-store directory, or ``None`` to disable
            caching.
        n_data_samples: Data-variation sample count per estimator.
        window_workers: Intra-job :class:`WindowAnalysisPool` width for
            window characterization and Monte Carlo DTA.  The engine and
            the pool share one worker budget: when the engine itself
            runs its jobs in parallel, jobs are pinned to
            ``window_workers=1`` so a batch never oversubscribes to
            ``max_workers x window_workers`` processes.
        executor: Window-analysis executor for intra-job pools
            (``"auto"``, ``"local-serial"``, ``"local-fork"``).  Jobs
            are pinned to ``local-serial`` when the engine itself runs
            parallel — a pool worker must never fork its own pool.
    """

    def __init__(
        self,
        config: ProcessorConfig | None = None,
        *,
        max_workers: int = 1,
        cache_dir=None,
        n_data_samples: int = 128,
        window_workers: int = 1,
        executor: str = "auto",
    ) -> None:
        from repro.dta.executor import get_executor

        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if window_workers < 1:
            raise ValueError("window_workers must be >= 1")
        get_executor(executor)  # fail fast on unknown names
        self.config = config or ProcessorConfig()
        self.max_workers = max_workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.n_data_samples = n_data_samples
        self.window_workers = window_workers
        self.executor = executor

    # ------------------------------------------------------------------ #

    @property
    def base_processor(self) -> ProcessorModel:
        """The built (and registry-shared) base processor."""
        return _base_processor(self.config)

    @staticmethod
    def fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def _prepare(self) -> bool | None:
        """Warm parent-side shared state before any fork.

        Builds the base processor, its baseline period (the SSTA solve),
        and the datapath model — loading the latter from the store when
        possible — so pool workers inherit them copy-on-write instead of
        re-deriving them per process.  Returns the datapath store-hit
        flag (``None`` when caching is off).
        """
        base = self.base_processor
        _ = base.clock_period  # triggers the SSTA baseline solve
        _ = base.control_analyzer
        trainer = REGISTRY.create("datapath")
        if self.cache_dir is None:
            return trainer.ensure(base)
        store = ArtifactStore(self.cache_dir)
        # The same composed key the per-job pipeline uses, so the warm
        # parent-side load serves every worker.
        key = store.compose_key(
            "datapath",
            REGISTRY.get("datapath").cache_id,
            DatapathInputIR.build(self.config).content_hash,
        )
        return trainer.ensure(base, key=key, store=store)

    def _plan_grid(self, requests) -> tuple[list[list[int]], list[int]]:
        """Split a batch into grid-eligible groups and leftover indices.

        A group is grid-eligible when it holds at least two requests
        identical up to ``speculation`` — the shape whose period-
        independent work the batched evaluator can share.  Repeated
        identical points qualify too: the grid dedupes them and trains
        one representative, so N copies of one job cost one training
        pass and one evaluation simulation.  Everything else (mixed
        workloads, singletons) stays on the scalar path.
        """
        from repro.pipeline.grid import GridRequest

        groups: dict[tuple, list[int]] = {}
        for i, request in enumerate(requests):
            key = GridRequest.base_identity(request)
            if not isinstance(request.workload, str):
                # Bring-your-own workload objects only group with
                # themselves — same name does not mean same program.
                key = key + (("workload_object", id(request.workload)),)
            groups.setdefault(key, []).append(i)
        grid_groups: list[list[int]] = []
        remaining: list[int] = []
        for indices in groups.values():
            if len(indices) >= 2:
                grid_groups.append(indices)
            else:
                remaining.extend(indices)
        grid_groups.sort(key=lambda indices: indices[0])
        return grid_groups, remaining

    def _grid_pipeline(self):
        """The in-parent pipeline grid batches run on (built per run)."""
        from repro.pipeline.pipeline import EstimationPipeline

        return EstimationPipeline(
            self.config,
            backends={
                "dta": (
                    "windowpool" if self.window_workers > 1 else "kernels"
                ),
                "estimate": "grid",
            },
            store=(
                ArtifactStore(self.cache_dir) if self.cache_dir else None
            ),
            n_data_samples=self.n_data_samples,
            window_workers=self.window_workers,
            executor=self.executor,
        )

    def run(self, requests, *, grid: bool = True) -> RunSummary:
        """Execute all requests; results come back in request order.

        With ``grid=True`` (the default) the engine detects request
        groups that differ only in operating point and evaluates each
        through the batched grid path
        (:meth:`~repro.pipeline.pipeline.EstimationPipeline.execute_grid`)
        in the parent process — byte-identical reports, one shared
        training/evaluation simulation per group.  Heterogeneous
        requests (and any group whose grid pass fails) fall back
        transparently to the scalar per-job path.
        """
        requests = list(requests)
        start = time.perf_counter()
        datapath_hit = self._prepare()
        raw: list[dict | None] = [None] * len(requests)
        grid_batches = 0
        if grid:
            grid_groups, remaining = self._plan_grid(requests)
        else:
            grid_groups, remaining = [], list(range(len(requests)))
        if grid_groups:
            pipeline = self._grid_pipeline()
            for indices in grid_groups:
                group = [requests[i] for i in indices]
                try:
                    outcome = pipeline.execute_grid(group)
                except Exception:
                    # Scalar path owns failure capture (per-request
                    # error documents instead of a lost batch).
                    remaining.extend(indices)
                    continue
                grid_batches += 1
                first_cold = next(
                    (
                        k
                        for k, r in enumerate(outcome.results)
                        if not r.cache_hit
                    ),
                    None,
                )
                for k, (i, result) in enumerate(
                    zip(indices, outcome.results)
                ):
                    doc = _doc_from_result(result)
                    doc["grid"] = True
                    doc["eval_sim_skipped"] = k > 0
                    doc["train_sim_skipped"] = (
                        result.cache_hit or k != first_cold
                    )
                    raw[i] = doc
        remaining.sort()
        parallel = (
            self.max_workers > 1
            and len(remaining) > 1
            and self.fork_available()
        )
        payloads = [
            {
                "request": requests[i],
                "config": self.config,
                "cache_dir": self.cache_dir,
                "n_data_samples": self.n_data_samples,
                # Shared worker budget: intra-job pools stay serial when
                # the engine already fans jobs out across processes.
                "window_workers": 1 if parallel else self.window_workers,
                "executor": (
                    "local-serial" if parallel else self.executor
                ),
            }
            for i in remaining
        ]
        if parallel:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=min(self.max_workers, len(remaining)),
                mp_context=context,
            ) as pool:
                scalar_raw = list(pool.map(_execute_payload, payloads))
        else:
            scalar_raw = [_execute_payload(p) for p in payloads]
        for i, doc in zip(remaining, scalar_raw):
            raw[i] = doc
        results = [
            self._result_from(request, doc)
            for request, doc in zip(requests, raw)
        ]
        return RunSummary(
            results=results,
            wall_seconds=time.perf_counter() - start,
            max_workers=self.max_workers,
            parallel=parallel,
            cache_dir=self.cache_dir,
            window_workers=self.window_workers,
            executor=self.executor,
            datapath_cache_hit=datapath_hit,
            grid_batches=grid_batches,
        )

    @staticmethod
    def _result_from(request: EstimationRequest, doc: dict) -> JobResult:
        report = None
        if doc.get("report") is not None:
            report = ErrorRateReport.from_json(doc["report"])
        return JobResult(
            request=request,
            status=doc["status"],
            report=report,
            error=doc.get("error"),
            cache_hit=doc.get("cache_hit", False),
            train_seconds=doc.get("train_seconds", 0.0),
            estimate_seconds=doc.get("estimate_seconds", 0.0),
            instructions=doc.get("instructions", 0),
            worker=doc.get("worker", 0),
            seed=doc.get("seed", 0),
            speculation=doc.get("speculation", 0.0),
            working_frequency_mhz=doc.get("working_frequency_mhz"),
            net_performance_percent=doc.get("net_performance_percent"),
            kernel_stats=doc.get("kernel_stats"),
            stages=doc.get("stages"),
            grid=doc.get("grid", False),
            train_sim_skipped=doc.get("train_sim_skipped", False),
            eval_sim_skipped=doc.get("eval_sim_skipped", False),
        )
