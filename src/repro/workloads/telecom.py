"""Telecom-category workloads: ``gsm.encode`` and ``gsm.decode``.

MiBench analogues of the GSM codec pair: ``gsm.encode`` computes per-frame
normalization and lag-0..7 autocorrelation with quantization (tight
multiply-accumulate loops — the multiplier is the pipeline's longest
datapath, which is why the GSM pair shows the highest error rates in the
paper's Table 2); ``gsm.decode`` runs a 4-tap IIR synthesis filter over an
excitation stream with per-frame coefficients.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.cpu.state import MachineState
from repro.workloads.base import Dataset, Workload, make_workload

__all__ = ["build_gsm_encode", "build_gsm_decode"]

_N_ADDR = 0x0FF0
_F_ADDR = 0x0FF1
_SAMPLES = 0x1000
_COEFS = 0x3000  # above the largest excitation array (0x1000 + 4200)
_OUT = 0x4000
_MASK = 0xFFFF

_GSM_ENCODE_SRC = """
; gsm.encode: per-frame normalization + autocorrelation + quantization.
        ld   r10, [r0+0x0FF0]   ; N samples
        ld   r11, [r0+0x0FF1]   ; frame size F
        li   r1, 0              ; frame base
        li   r12, 0             ; frame index
frame_loop:
        add  r2, r1, r11        ; frame end
        cmp  r2, r10
        bgt  done
; ---- frame maximum (normalization scan)
        li   r3, 0
        mov  r4, r1
max_loop:
        cmp  r4, r2
        bge  max_done
        li   r6, 0x1000
        add  r6, r6, r4
        ld   r5, [r6+0]
        cmp  r5, r3
        ble  max_next
        mov  r3, r5
max_next:
        inc  r4
        ba   max_loop
max_done:
; ---- normalization shift: reduce max below 256
        li   r7, 0
shift_loop:
        cmp  r3, 255
        ble  shift_done
        srl  r3, r3, 1
        inc  r7
        ba   shift_loop
shift_done:
; ---- autocorrelation lags 0..7
        li   r8, 0              ; lag k
lag_loop:
        cmp  r8, 8
        bge  frame_next
        li   r9, 0              ; accumulator
        add  r4, r1, r8         ; i = base + k
acf_loop:
        cmp  r4, r2
        bge  acf_done
        li   r6, 0x1000
        add  r6, r6, r4
        ld   r5, [r6+0]
        srl  r5, r5, r7
        sub  r13, r4, r8
        li   r6, 0x1000
        add  r6, r6, r13
        ld   r13, [r6+0]
        srl  r13, r13, r7
        mul  r5, r5, r13
        add  r9, r9, r5
        inc  r4
        ba   acf_loop
acf_done:
        srl  r9, r9, 4          ; quantize
        sll  r6, r12, 3
        add  r6, r6, r8
        li   r13, 0x4000
        add  r6, r6, r13
        st   r9, [r6+0]
        inc  r8
        ba   lag_loop
frame_next:
        add  r1, r1, r11
        inc  r12
        ba   frame_loop
done:
        halt
"""


def _gsm_encode_params(dataset: Dataset) -> dict:
    frame = 40
    frames = 11 if dataset.scale == "small" else 78
    n = frame * frames
    rng = as_rng(dataset.seed)
    # Speech-like samples: smooth narrowband signal + noise, 10 bits.
    t = np.arange(n)
    wave = (
        512
        + 300 * np.sin(2 * np.pi * t / 23.0)
        + 120 * np.sin(2 * np.pi * t / 7.0)
        + rng.normal(0, 40, size=n)
    )
    samples = np.clip(wave, 0, 1023).astype(np.int64)
    return {"n": n, "frame": frame, "frames": frames, "samples": samples}


def _gsm_encode_reference(p: dict) -> list[int]:
    frame, samples = p["frame"], [int(v) for v in p["samples"]]
    out = []
    for f in range(p["frames"]):
        chunk = samples[f * frame : (f + 1) * frame]
        mx = max(chunk) if chunk else 0
        shift = 0
        while mx > 255:
            mx >>= 1
            shift += 1
        for k in range(8):
            acc = 0
            for i in range(k, frame):
                a = chunk[i] >> shift
                b = chunk[i - k] >> shift
                acc = (acc + ((a * b) & _MASK)) & _MASK
            out.append((acc >> 4) & _MASK)
    return out


def _gsm_encode_generate(state: MachineState, dataset: Dataset) -> None:
    p = _gsm_encode_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.write_mem(_F_ADDR, p["frame"])
    state.load_words(_SAMPLES, p["samples"])


def _gsm_encode_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _gsm_encode_params(dataset)
    expected = _gsm_encode_reference(p)
    return all(
        state.read_mem(_OUT + i) == expected[i]
        for i in range(len(expected))
    )


def build_gsm_encode() -> Workload:
    return make_workload(
        "gsm.encode",
        "telecom",
        _GSM_ENCODE_SRC,
        _gsm_encode_generate,
        _gsm_encode_verify,
    )


# --------------------------------------------------------------------- #
# gsm.decode
# --------------------------------------------------------------------- #

_GSM_DECODE_SRC = """
; gsm.decode: 4-tap IIR synthesis filter with per-frame coefficients.
        ld   r10, [r0+0x0FF0]   ; N samples
        ld   r11, [r0+0x0FF1]   ; frame size F
        li   r1, 0              ; sample index
        li   r12, 0             ; frame index
        li   r13, 0             ; index within frame
samp_loop:
        cmp  r1, r10
        bge  done
        li   r6, 0x1000
        add  r6, r6, r1
        ld   r2, [r6+0]         ; excitation e[i]
        li   r8, 1              ; tap k
tap_loop:
        cmp  r8, 4
        bgt  taps_done
        cmp  r8, r1
        bgt  tap_next           ; not enough history yet
        sll  r6, r12, 2         ; coefficient c_k of this frame
        add  r6, r6, r8
        li   r5, 0x3000
        add  r6, r6, r5
        ld   r4, [r6-1]
        sub  r6, r1, r8         ; y[i - k]
        li   r5, 0x4000
        add  r6, r6, r5
        ld   r5, [r6+0]
        mul  r5, r5, r4
        srl  r5, r5, 6
        add  r2, r2, r5
tap_next:
        inc  r8
        ba   tap_loop
taps_done:
        li   r6, 0x4000
        add  r6, r6, r1
        st   r2, [r6+0]
        inc  r13
        inc  r1
        cmp  r13, r11
        blt  samp_loop
        li   r13, 0
        inc  r12
        ba   samp_loop
done:
        halt
"""


def _gsm_decode_params(dataset: Dataset) -> dict:
    frame = 40
    frames = 13 if dataset.scale == "small" else 105
    n = frame * frames
    rng = as_rng(dataset.seed)
    excitation = rng.integers(0, 256, size=n)
    coefs = rng.integers(0, 48, size=4 * frames)
    return {
        "n": n,
        "frame": frame,
        "frames": frames,
        "excitation": excitation,
        "coefs": coefs,
    }


def _gsm_decode_reference(p: dict) -> list[int]:
    n, frame = p["n"], p["frame"]
    e = [int(v) for v in p["excitation"]]
    coefs = [int(v) for v in p["coefs"]]
    y = [0] * n
    for i in range(n):
        f = i // frame
        acc = e[i]
        for k in range(1, 5):
            if k > i:
                continue
            c = coefs[4 * f + k - 1]
            acc = (acc + (((y[i - k] * c) & _MASK) >> 6)) & _MASK
        y[i] = acc
    return y


def _gsm_decode_generate(state: MachineState, dataset: Dataset) -> None:
    p = _gsm_decode_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.write_mem(_F_ADDR, p["frame"])
    state.load_words(_SAMPLES, p["excitation"])
    state.load_words(_COEFS, p["coefs"])


def _gsm_decode_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _gsm_decode_params(dataset)
    expected = _gsm_decode_reference(p)
    return all(
        state.read_mem(_OUT + i) == expected[i] for i in range(p["n"])
    )


def build_gsm_decode() -> Workload:
    return make_workload(
        "gsm.decode",
        "telecom",
        _GSM_DECODE_SRC,
        _gsm_decode_generate,
        _gsm_decode_verify,
    )
