"""Automotive-category workloads: ``basicmath`` and ``bitcount``.

MiBench analogues: ``basicmath`` performs integer square roots (bitwise
shift-subtract, no divider in the ISA) and quadratic polynomial evaluation
over an input vector; ``bitcount`` runs four classic population-count
algorithms (naive shift loop, Kernighan, nibble table lookup, SWAR) over a
value vector and accumulates per-method totals.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.cpu.state import MachineState
from repro.workloads.base import Dataset, Workload, make_workload

__all__ = ["build_basicmath", "build_bitcount"]

_N_ADDR = 0x0FF0
_A_ADDR, _B_ADDR, _C_ADDR = 0x0FF1, 0x0FF2, 0x0FF3
_IN = 0x1000
_SQRT_OUT = 0x4000
_POLY_OUT = 0x5000

_BASICMATH_SRC = """
; basicmath: integer sqrt + polynomial evaluation over an input vector.
        li   r1, 0              ; i = 0
main_loop:
        ld   r14, [r0+0x0FF0]   ; N
        cmp  r1, r14
        bge  done
        li   r2, 0x1000
        add  r2, r2, r1
        ld   r3, [r2+0]         ; x
; ---- bitwise integer square root: result in r4
        li   r4, 0              ; res
        li   r5, 16384          ; bit = 1 << 14
sqrt_loop:
        cmp  r5, 0
        beq  sqrt_done
        add  r6, r4, r5         ; t = res + bit
        cmp  r3, r6
        bcs  sqrt_skip          ; x < t (unsigned)
        sub  r3, r3, r6
        srl  r4, r4, 1
        add  r4, r4, r5
        ba   sqrt_next
sqrt_skip:
        srl  r4, r4, 1
sqrt_next:
        srl  r5, r5, 2
        ba   sqrt_loop
sqrt_done:
        li   r7, 0x4000
        add  r7, r7, r1
        st   r4, [r7+0]
; ---- polynomial a*x^2 + b*x + c (mod 2^16)
        ld   r3, [r2+0]         ; reload x (sqrt destroyed it)
        ld   r8, [r0+0x0FF1]    ; a
        ld   r9, [r0+0x0FF2]    ; b
        ld   r10, [r0+0x0FF3]   ; c
        mul  r11, r3, r3
        mul  r11, r11, r8
        mul  r12, r3, r9
        add  r11, r11, r12
        add  r11, r11, r10
        li   r7, 0x5000
        add  r7, r7, r1
        st   r11, [r7+0]
        inc  r1
        ba   main_loop
done:
        halt
"""


def _basicmath_params(dataset: Dataset) -> dict:
    n = 140 if dataset.scale == "small" else 2200
    rng = as_rng(dataset.seed)
    values = rng.integers(0, 1 << 16, size=n)
    coeffs = rng.integers(1, 64, size=3)
    return {"n": n, "values": values, "coeffs": coeffs}


def _basicmath_generate(state: MachineState, dataset: Dataset) -> None:
    p = _basicmath_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.write_mem(_A_ADDR, int(p["coeffs"][0]))
    state.write_mem(_B_ADDR, int(p["coeffs"][1]))
    state.write_mem(_C_ADDR, int(p["coeffs"][2]))
    state.load_words(_IN, p["values"])


def _isqrt16(x: int) -> int:
    res = 0
    bit = 1 << 14
    while bit:
        t = res + bit
        if x >= t:
            x -= t
            res = (res >> 1) + bit
        else:
            res >>= 1
        bit >>= 2
    return res


def _basicmath_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _basicmath_params(dataset)
    a, b, c = (int(v) for v in p["coeffs"])
    for i, x in enumerate(int(v) for v in p["values"]):
        if state.read_mem(_SQRT_OUT + i) != _isqrt16(x):
            return False
        poly = (a * x * x + b * x + c) & 0xFFFF
        if state.read_mem(_POLY_OUT + i) != poly:
            return False
    return True


def build_basicmath() -> Workload:
    return make_workload(
        "basicmath",
        "automotive",
        _BASICMATH_SRC,
        _basicmath_generate,
        _basicmath_verify,
    )


# --------------------------------------------------------------------- #
# bitcount
# --------------------------------------------------------------------- #

_TABLE = 0x0E00  # 16-entry nibble popcount table
_BC_OUT = 0x4000  # four per-method accumulators

_BITCOUNT_SRC = """
; bitcount: four population-count algorithms over an input vector.
        li   r1, 0              ; i
        li   r10, 0             ; total: naive
        li   r11, 0             ; total: kernighan
        li   r12, 0             ; total: table
        li   r13, 0             ; total: swar
main_loop:
        ld   r14, [r0+0x0FF0]
        cmp  r1, r14
        bge  done
        li   r2, 0x1000
        add  r2, r2, r1
        ld   r3, [r2+0]         ; x
; ---- method 1: naive shift-and-test
        mov  r4, r3
        li   r5, 16
naive_loop:
        and  r6, r4, 1
        add  r10, r10, r6
        srl  r4, r4, 1
        subcc r5, r5, 1
        bne  naive_loop
; ---- method 2: Kernighan
        mov  r4, r3
kern_loop:
        cmp  r4, 0
        beq  kern_done
        sub  r5, r4, 1
        and  r4, r4, r5
        inc  r11
        ba   kern_loop
kern_done:
; ---- method 3: nibble table lookup
        and  r5, r3, 15
        ld   r6, [r5+0x0E00]
        add  r12, r12, r6
        srl  r5, r3, 4
        and  r5, r5, 15
        ld   r6, [r5+0x0E00]
        add  r12, r12, r6
        srl  r5, r3, 8
        and  r5, r5, 15
        ld   r6, [r5+0x0E00]
        add  r12, r12, r6
        srl  r5, r3, 12
        ld   r6, [r5+0x0E00]
        add  r12, r12, r6
; ---- method 4: SWAR
        srl  r5, r3, 1
        li   r7, 0x5555
        and  r5, r5, r7
        sub  r4, r3, r5         ; x - ((x>>1) & 0x5555)
        li   r7, 0x3333
        and  r5, r4, r7
        srl  r6, r4, 2
        and  r6, r6, r7
        add  r4, r5, r6
        srl  r5, r4, 4
        add  r4, r4, r5
        li   r7, 0x0F0F
        and  r4, r4, r7
        srl  r5, r4, 8
        add  r4, r4, r5
        and  r4, r4, 31
        add  r13, r13, r4
        inc  r1
        ba   main_loop
done:
        st   r10, [r0+0x4000]
        st   r11, [r0+0x4001]
        st   r12, [r0+0x4002]
        st   r13, [r0+0x4003]
        halt
"""


def _bitcount_params(dataset: Dataset) -> dict:
    n = 110 if dataset.scale == "small" else 2100
    rng = as_rng(dataset.seed)
    # Mixed sparsity: real bit-twiddling inputs are rarely uniform.
    widths = rng.integers(1, 17, size=n)
    values = np.array(
        [int(rng.integers(1 << w)) for w in widths], dtype=np.int64
    )
    return {"n": n, "values": values}


def _bitcount_generate(state: MachineState, dataset: Dataset) -> None:
    p = _bitcount_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.load_words(_IN, p["values"])
    state.load_words(_TABLE, [bin(v).count("1") for v in range(16)])


def _bitcount_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _bitcount_params(dataset)
    total = sum(bin(int(v)).count("1") for v in p["values"]) & 0xFFFF
    return all(
        state.read_mem(_BC_OUT + m) == total for m in range(4)
    )


def build_bitcount() -> Workload:
    return make_workload(
        "bitcount",
        "automotive",
        _BITCOUNT_SRC,
        _bitcount_generate,
        _bitcount_verify,
    )
