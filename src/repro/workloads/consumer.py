"""Consumer-category workloads: ``tiff2bw`` and ``typeset``.

MiBench analogues: ``tiff2bw`` converts RGB pixel triples to weighted
grayscale (multiply-accumulate per pixel); ``typeset`` performs greedy
line-breaking over word widths with squared-slack badness accumulation
(branch-heavy with occasional multiplies).
"""

from __future__ import annotations

from repro._util import as_rng
from repro.cpu.state import MachineState
from repro.workloads.base import Dataset, Workload, make_workload

__all__ = ["build_tiff2bw", "build_typeset"]

_N_ADDR = 0x0FF0
_IN = 0x1000
_OUT = 0x4000
_GRAY_OUT = 0x9000

_TIFF2BW_SRC = """
; tiff2bw: gray = (77 R + 150 G + 29 B) >> 8 per pixel.
        ld   r10, [r0+0x0FF0]   ; N pixels
        li   r2, 0x1000         ; rgb pointer
        li   r3, 0x9000         ; gray pointer
        li   r1, 0
pixel_loop:
        cmp  r1, r10
        bge  done
        ld   r4, [r2+0]         ; R
        ld   r5, [r2+1]         ; G
        ld   r6, [r2+2]         ; B
        li   r7, 77
        mul  r4, r4, r7
        li   r7, 150
        mul  r5, r5, r7
        li   r7, 29
        mul  r6, r6, r7
        add  r4, r4, r5
        add  r4, r4, r6
        srl  r4, r4, 8
        st   r4, [r3+0]
        add  r2, r2, 3
        inc  r3
        inc  r1
        ba   pixel_loop
done:
        halt
"""


def _tiff2bw_params(dataset: Dataset) -> dict:
    n = 700 if dataset.scale == "small" else 10000
    rng = as_rng(dataset.seed)
    pixels = rng.integers(0, 256, size=3 * n)
    return {"n": n, "pixels": pixels}


def _tiff2bw_generate(state: MachineState, dataset: Dataset) -> None:
    p = _tiff2bw_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.load_words(_IN, p["pixels"])


def _tiff2bw_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _tiff2bw_params(dataset)
    px = [int(v) for v in p["pixels"]]
    for i in range(p["n"]):
        r, g, b = px[3 * i : 3 * i + 3]
        gray = (77 * r + 150 * g + 29 * b) >> 8
        if state.read_mem(_GRAY_OUT + i) != gray:
            return False
    return True


def build_tiff2bw() -> Workload:
    return make_workload(
        "tiff2bw",
        "consumer",
        _TIFF2BW_SRC,
        _tiff2bw_generate,
        _tiff2bw_verify,
    )


# --------------------------------------------------------------------- #
# typeset
# --------------------------------------------------------------------- #

_W_ADDR = 0x0FF1
_S_ADDR = 0x0FF2
_BADNESS_OUT = 0x4000
_LINES_OUT = 0x4001

_TYPESET_SRC = """
; typeset: greedy line breaking; badness = sum of squared line slack.
        ld   r10, [r0+0x0FF0]   ; N words
        ld   r11, [r0+0x0FF1]   ; line width
        ld   r12, [r0+0x0FF2]   ; space width
        li   r1, 0              ; word index
        li   r2, 0              ; used width on current line (0 = empty)
        li   r8, 0              ; badness accumulator
        li   r9, 0              ; line count
word_loop:
        cmp  r1, r10
        bge  flush
        li   r7, 0x1000
        add  r7, r7, r1
        ld   r3, [r7+0]         ; word width
        cmp  r2, 0
        beq  first_word
        add  r4, r2, r12
        add  r4, r4, r3
        cmp  r4, r11
        bgt  break_line
        mov  r2, r4
        ba   next_word
first_word:
        mov  r2, r3
        ba   next_word
break_line:
        sub  r5, r11, r2        ; slack
        mul  r5, r5, r5
        add  r8, r8, r5
        inc  r9
        mov  r2, r3             ; word opens the new line
next_word:
        inc  r1
        ba   word_loop
flush:
        cmp  r2, 0
        beq  done
        sub  r5, r11, r2
        mul  r5, r5, r5
        add  r8, r8, r5
        inc  r9
done:
        st   r8, [r0+0x4000]
        st   r9, [r0+0x4001]
        halt
"""


def _typeset_params(dataset: Dataset) -> dict:
    n = 1400 if dataset.scale == "small" else 24000
    rng = as_rng(dataset.seed)
    widths = rng.integers(1, 15, size=n)
    return {"n": n, "widths": widths, "line_width": 60, "space": 1}


def _typeset_generate(state: MachineState, dataset: Dataset) -> None:
    p = _typeset_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.write_mem(_W_ADDR, p["line_width"])
    state.write_mem(_S_ADDR, p["space"])
    state.load_words(_IN, p["widths"])


def _typeset_reference(p: dict) -> tuple[int, int]:
    width, space = p["line_width"], p["space"]
    used = 0
    badness = 0
    lines = 0
    for w in (int(v) for v in p["widths"]):
        if used == 0:
            used = w
        elif used + space + w <= width:
            used = used + space + w
        else:
            slack = width - used
            badness = (badness + slack * slack) & 0xFFFF
            lines += 1
            used = w
    if used:
        slack = width - used
        badness = (badness + slack * slack) & 0xFFFF
        lines += 1
    return badness, lines


def _typeset_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _typeset_params(dataset)
    badness, lines = _typeset_reference(p)
    return (
        state.read_mem(_BADNESS_OUT) == badness
        and state.read_mem(_LINES_OUT) == lines & 0xFFFF
    )


def build_typeset() -> Workload:
    return make_workload(
        "typeset",
        "consumer",
        _TYPESET_SRC,
        _typeset_generate,
        _typeset_verify,
    )
