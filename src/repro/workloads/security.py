"""Security-category workloads: ``pgp.encode`` and ``pgp.decode``.

MiBench analogues of the PGP pair: a Feistel block cipher (XTEA-style, on
16-bit halves to match the datapath) encrypting/decrypting a message
stream.  Eight rounds of shifts, XORs, and additions with a key schedule
indexed by the running sum — ALU-dense with data-dependent table loads.
"""

from __future__ import annotations

from repro._util import as_rng
from repro.cpu.state import MachineState
from repro.workloads.base import Dataset, Workload, make_workload

__all__ = ["build_pgp_encode", "build_pgp_decode"]

_N_ADDR = 0x0FF0
_KEY = 0x0FE0
_IN = 0x1000
_OUT = 0x4000
_DELTA = 0x9E37
_ROUNDS = 8
_MASK = 0xFFFF

_ENCODE_SRC = """
; pgp.encode: XTEA-style Feistel cipher over 16-bit half-blocks.
        ld   r10, [r0+0x0FF0]   ; N blocks
        li   r1, 0
block_loop:
        cmp  r1, r10
        bge  done
        sll  r7, r1, 1
        li   r5, 0x1000
        add  r7, r7, r5
        ld   r2, [r7+0]         ; v0
        ld   r3, [r7+1]         ; v1
        li   r4, 0              ; sum
        li   r9, 0x9E37         ; delta
        li   r8, 8              ; rounds
round_loop:
; v0 += (((v1<<3) ^ (v1>>4)) + v1) ^ (sum + key[sum & 3])
        sll  r5, r3, 3
        srl  r6, r3, 4
        xor  r5, r5, r6
        add  r5, r5, r3
        and  r6, r4, 3
        ld   r6, [r6+0x0FE0]
        add  r6, r6, r4
        xor  r5, r5, r6
        add  r2, r2, r5
        add  r4, r4, r9         ; sum += delta
; v1 += (((v0<<3) ^ (v0>>4)) + v0) ^ (sum + key[(sum>>2) & 3])
        sll  r5, r2, 3
        srl  r6, r2, 4
        xor  r5, r5, r6
        add  r5, r5, r2
        srl  r6, r4, 2
        and  r6, r6, 3
        ld   r6, [r6+0x0FE0]
        add  r6, r6, r4
        xor  r5, r5, r6
        add  r3, r3, r5
        subcc r8, r8, 1
        bne  round_loop
        sll  r7, r1, 1
        li   r5, 0x4000
        add  r7, r7, r5
        st   r2, [r7+0]
        st   r3, [r7+1]
        inc  r1
        ba   block_loop
done:
        halt
"""

_DECODE_SRC = """
; pgp.decode: inverse Feistel rounds.
        ld   r10, [r0+0x0FF0]   ; N blocks
        li   r1, 0
block_loop:
        cmp  r1, r10
        bge  done
        sll  r7, r1, 1
        li   r5, 0x1000
        add  r7, r7, r5
        ld   r2, [r7+0]         ; v0
        ld   r3, [r7+1]         ; v1
        li   r9, 0x9E37         ; delta
        li   r4, 0xF1B8         ; sum = 8 * delta mod 2^16
        li   r8, 8
round_loop:
; v1 -= (((v0<<3) ^ (v0>>4)) + v0) ^ (sum + key[(sum>>2) & 3])
        sll  r5, r2, 3
        srl  r6, r2, 4
        xor  r5, r5, r6
        add  r5, r5, r2
        srl  r6, r4, 2
        and  r6, r6, 3
        ld   r6, [r6+0x0FE0]
        add  r6, r6, r4
        xor  r5, r5, r6
        sub  r3, r3, r5
        sub  r4, r4, r9         ; sum -= delta
; v0 -= (((v1<<3) ^ (v1>>4)) + v1) ^ (sum + key[sum & 3])
        sll  r5, r3, 3
        srl  r6, r3, 4
        xor  r5, r5, r6
        add  r5, r5, r3
        and  r6, r4, 3
        ld   r6, [r6+0x0FE0]
        add  r6, r6, r4
        xor  r5, r5, r6
        sub  r2, r2, r5
        subcc r8, r8, 1
        bne  round_loop
        sll  r7, r1, 1
        li   r5, 0x4000
        add  r7, r7, r5
        st   r2, [r7+0]
        st   r3, [r7+1]
        inc  r1
        ba   block_loop
done:
        halt
"""


def _encrypt_block(v0: int, v1: int, key: list[int]) -> tuple[int, int]:
    total = 0
    for _ in range(_ROUNDS):
        f = ((((v1 << 3) & _MASK) ^ (v1 >> 4)) + v1) & _MASK
        v0 = (v0 + (f ^ ((total + key[total & 3]) & _MASK))) & _MASK
        total = (total + _DELTA) & _MASK
        f = ((((v0 << 3) & _MASK) ^ (v0 >> 4)) + v0) & _MASK
        v1 = (v1 + (f ^ ((total + key[(total >> 2) & 3]) & _MASK))) & _MASK
    return v0, v1


def _decrypt_block(v0: int, v1: int, key: list[int]) -> tuple[int, int]:
    total = (_DELTA * _ROUNDS) & _MASK
    for _ in range(_ROUNDS):
        f = ((((v0 << 3) & _MASK) ^ (v0 >> 4)) + v0) & _MASK
        v1 = (v1 - (f ^ ((total + key[(total >> 2) & 3]) & _MASK))) & _MASK
        total = (total - _DELTA) & _MASK
        f = ((((v1 << 3) & _MASK) ^ (v1 >> 4)) + v1) & _MASK
        v0 = (v0 - (f ^ ((total + key[total & 3]) & _MASK))) & _MASK
    return v0, v1


def _pgp_params(dataset: Dataset) -> dict:
    n = 110 if dataset.scale == "small" else 2300
    rng = as_rng(dataset.seed)
    key = [int(k) for k in rng.integers(0, 1 << 16, size=4)]
    message = [int(v) for v in rng.integers(0, 1 << 16, size=2 * n)]
    return {"n": n, "key": key, "message": message}


def _pgp_generate_encode(state: MachineState, dataset: Dataset) -> None:
    p = _pgp_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.load_words(_KEY, p["key"])
    state.load_words(_IN, p["message"])


def _pgp_verify_encode(state: MachineState, dataset: Dataset) -> bool:
    p = _pgp_params(dataset)
    msg, key = p["message"], p["key"]
    for i in range(p["n"]):
        v0, v1 = _encrypt_block(msg[2 * i], msg[2 * i + 1], key)
        if (
            state.read_mem(_OUT + 2 * i) != v0
            or state.read_mem(_OUT + 2 * i + 1) != v1
        ):
            return False
    return True


def _pgp_generate_decode(state: MachineState, dataset: Dataset) -> None:
    p = _pgp_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.load_words(_KEY, p["key"])
    cipher = []
    for i in range(p["n"]):
        v0, v1 = _encrypt_block(
            p["message"][2 * i], p["message"][2 * i + 1], p["key"]
        )
        cipher.extend((v0, v1))
    state.load_words(_IN, cipher)


def _pgp_verify_decode(state: MachineState, dataset: Dataset) -> bool:
    p = _pgp_params(dataset)
    return all(
        state.read_mem(_OUT + i) == p["message"][i]
        for i in range(2 * p["n"])
    )


def build_pgp_encode() -> Workload:
    return make_workload(
        "pgp.encode",
        "security",
        _ENCODE_SRC,
        _pgp_generate_encode,
        _pgp_verify_encode,
    )


def build_pgp_decode() -> Workload:
    return make_workload(
        "pgp.decode",
        "security",
        _DECODE_SRC,
        _pgp_generate_decode,
        _pgp_verify_decode,
    )
