"""Office-category workloads: ``ghostscript`` and ``stringsearch``.

MiBench analogues: ``ghostscript`` rasterizes line segments into a 64x64
framebuffer with Bresenham's algorithm (error-accumulator arithmetic, dense
branching, stores); ``stringsearch`` is Boyer–Moore–Horspool over a 32-
symbol alphabet with a precomputed bad-character shift table.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.cpu.state import MachineState
from repro.workloads.base import Dataset, Workload, make_workload

__all__ = ["build_ghostscript", "build_stringsearch"]

_N_ADDR = 0x0FF0
_SEGS = 0x1000
_FB = 0x8000
_PIXELS_OUT = 0x4000

_GHOSTSCRIPT_SRC = """
; ghostscript: Bresenham line rasterization into a 64x64 framebuffer.
        ld   r14, [r0+0x0FF0]   ; number of segments
        li   r1, 0
        li   r13, 0             ; plotted pixel count
seg_loop:
        cmp  r1, r14
        bge  done
        sll  r11, r1, 2
        li   r12, 0x1000
        add  r11, r11, r12
        ld   r2, [r11+0]        ; x0
        ld   r3, [r11+1]        ; y0
        ld   r4, [r11+2]        ; x1
        ld   r5, [r11+3]        ; y1
; dx = |x1 - x0|, sx = sign
        sub  r6, r4, r2
        li   r8, 1
        cmp  r4, r2
        bge  dx_done
        sub  r6, r2, r4
        li   r8, -1
dx_done:
; dy = -|y1 - y0|, sy = sign
        sub  r7, r5, r3
        li   r9, 1
        cmp  r5, r3
        bge  dy_abs
        sub  r7, r3, r5
        li   r9, -1
dy_abs:
        li   r11, 0
        sub  r7, r11, r7        ; dy = -|dy|
        add  r10, r6, r7        ; err = dx + dy
plot_loop:
        sll  r11, r3, 6         ; fb[y*64 + x] = 1
        add  r11, r11, r2
        li   r12, 0x8000
        add  r11, r11, r12
        li   r12, 1
        st   r12, [r11+0]
        inc  r13
        cmp  r2, r4
        bne  step
        cmp  r3, r5
        beq  seg_next
step:
        add  r12, r10, r10      ; e2 = 2 err
        cmp  r12, r7
        blt  skip_x
        add  r10, r10, r7
        add  r2, r2, r8
skip_x:
        cmp  r12, r6
        bgt  plot_loop
        add  r10, r10, r6
        add  r3, r3, r9
        ba   plot_loop
seg_next:
        inc  r1
        ba   seg_loop
done:
        st   r13, [r0+0x4000]
        halt
"""


def _ghostscript_params(dataset: Dataset) -> dict:
    n = 16 if dataset.scale == "small" else 460
    rng = as_rng(dataset.seed)
    segs = rng.integers(0, 64, size=(n, 4))
    return {"n": n, "segs": segs}


def _bresenham(x0, y0, x1, y1):
    """Replicates the assembly exactly; yields plotted (x, y) pixels."""
    dx = abs(x1 - x0)
    sx = 1 if x1 >= x0 else -1
    dy = -abs(y1 - y0)
    sy = 1 if y1 >= y0 else -1
    err = dx + dy
    while True:
        yield x0, y0
        if x0 == x1 and y0 == y1:
            return
        e2 = 2 * err
        if e2 >= dy:
            err += dy
            x0 += sx
        if e2 <= dx:
            err += dx
            y0 += sy


def _ghostscript_generate(state: MachineState, dataset: Dataset) -> None:
    p = _ghostscript_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.load_words(_SEGS, p["segs"].ravel())


def _ghostscript_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _ghostscript_params(dataset)
    fb = np.zeros((64, 64), dtype=bool)
    plotted = 0
    for x0, y0, x1, y1 in (tuple(int(v) for v in s) for s in p["segs"]):
        for x, y in _bresenham(x0, y0, x1, y1):
            fb[y, x] = True
            plotted += 1
    if state.read_mem(_PIXELS_OUT) != plotted & 0xFFFF:
        return False
    for y in range(64):
        for x in range(64):
            if bool(state.read_mem(_FB + y * 64 + x)) != fb[y, x]:
                return False
    return True


def build_ghostscript() -> Workload:
    return make_workload(
        "ghostscript",
        "office",
        _GHOSTSCRIPT_SRC,
        _ghostscript_generate,
        _ghostscript_verify,
    )


# --------------------------------------------------------------------- #
# stringsearch
# --------------------------------------------------------------------- #

_T_ADDR = 0x0FF0
_M_ADDR = 0x0FF1
_R_ADDR = 0x0FF2
_TEXT = 0x2000
_PATTERN = 0x1C00
_SHIFT_TABLE = 0x0E00
_MATCHES_OUT = 0x4000
_ALPHABET = 32

_STRINGSEARCH_SRC = """
; stringsearch: Boyer-Moore-Horspool over a 32-symbol alphabet.
        ld   r10, [r0+0x0FF0]   ; text length T
        ld   r11, [r0+0x0FF1]   ; pattern length M
; ---- build the bad-character shift table (default M)
        li   r1, 0
        li   r2, 32
tbl_init:
        cmp  r1, r2
        bge  tbl_fill
        li   r6, 0x0E00
        add  r6, r6, r1
        st   r11, [r6+0]
        inc  r1
        ba   tbl_init
tbl_fill:
        li   r1, 0
        sub  r12, r11, 1        ; M - 1
fill_loop:
        cmp  r1, r12
        bge  reps
        li   r6, 0x1C00
        add  r6, r6, r1
        ld   r3, [r6+0]         ; pattern[j]
        sub  r4, r12, r1        ; shift = M - 1 - j
        li   r6, 0x0E00
        add  r6, r6, r3
        st   r4, [r6+0]
        inc  r1
        ba   fill_loop
reps:
        ld   r14, [r0+0x0FF2]   ; repetitions
        li   r9, 0              ; match count
rep_loop:
        cmp  r14, 0
        beq  done
        li   r1, 0              ; window position
        sub  r13, r10, r11      ; last valid position
srch_loop:
        cmp  r1, r13
        bgt  rep_next
        mov  r2, r12            ; j = M - 1
cmp_loop:
        li   r6, 0x2000
        add  r6, r6, r1
        add  r6, r6, r2
        ld   r3, [r6+0]         ; text[pos + j]
        li   r6, 0x1C00
        add  r6, r6, r2
        ld   r4, [r6+0]         ; pattern[j]
        cmp  r3, r4
        bne  mismatch
        cmp  r2, 0
        beq  match
        dec  r2
        ba   cmp_loop
match:
        inc  r9
mismatch:
        li   r6, 0x2000
        add  r6, r6, r1
        add  r6, r6, r12
        ld   r3, [r6+0]         ; text[pos + M - 1]
        li   r6, 0x0E00
        add  r6, r6, r3
        ld   r4, [r6+0]
        add  r1, r1, r4         ; advance by the table shift
        ba   srch_loop
rep_next:
        dec  r14
        ba   rep_loop
done:
        st   r9, [r0+0x4000]
        halt
"""


def _stringsearch_params(dataset: Dataset) -> dict:
    if dataset.scale == "small":
        t, reps = 650, 1
    else:
        t, reps = 7600, 4
    m = 5
    rng = as_rng(dataset.seed)
    text = rng.integers(0, _ALPHABET, size=t)
    pattern = rng.integers(0, _ALPHABET, size=m)
    # Plant some true occurrences.
    for pos in rng.integers(0, t - m, size=max(3, t // 200)):
        text[pos : pos + m] = pattern
    return {"t": t, "m": m, "reps": reps, "text": text, "pattern": pattern}


def _horspool_count(text, pattern) -> int:
    m = len(pattern)
    table = {c: m for c in range(_ALPHABET)}
    for j in range(m - 1):
        table[int(pattern[j])] = m - 1 - j
    count = 0
    pos = 0
    while pos <= len(text) - m:
        j = m - 1
        while j >= 0 and int(text[pos + j]) == int(pattern[j]):
            j -= 1
        if j < 0:
            count += 1
        pos += table[int(text[pos + m - 1])]
    return count


def _stringsearch_generate(state: MachineState, dataset: Dataset) -> None:
    p = _stringsearch_params(dataset)
    dataset.params.update(p)
    state.write_mem(_T_ADDR, p["t"])
    state.write_mem(_M_ADDR, p["m"])
    state.write_mem(_R_ADDR, p["reps"])
    state.load_words(_TEXT, p["text"])
    state.load_words(_PATTERN, p["pattern"])


def _stringsearch_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _stringsearch_params(dataset)
    expected = p["reps"] * _horspool_count(p["text"], p["pattern"])
    return state.read_mem(_MATCHES_OUT) == expected & 0xFFFF


def build_stringsearch() -> Workload:
    return make_workload(
        "stringsearch",
        "office",
        _STRINGSEARCH_SRC,
        _stringsearch_generate,
        _stringsearch_verify,
    )
