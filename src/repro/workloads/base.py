"""Workload plumbing: programs plus seeded datasets and verifiers.

Each workload mirrors a MiBench benchmark (two per suite category, Section
6.2): an assembly program for the repro ISA, ``small`` (training) and
``large`` (simulation) dataset generators that initialize machine state,
and a Python *reference verifier* recomputing the expected results so the
test suite can prove functional correctness of every program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro._util import as_rng, check_in
from repro.cpu.assembler import assemble
from repro.cpu.program import Program
from repro.cpu.state import MachineState

__all__ = ["Dataset", "Workload", "SCALES"]

SCALES = ("small", "large")


@dataclass(slots=True)
class Dataset:
    """A concrete dataset instance for one run.

    Attributes:
        scale: ``small`` or ``large``.
        seed: Generator seed (dataset identity).
        params: Free-form parameters the generator chose (sizes etc.),
            available to the verifier.
    """

    scale: str
    seed: int
    params: dict = field(default_factory=dict)


@dataclass(slots=True)
class Workload:
    """A benchmark program with its dataset machinery.

    Attributes:
        name: Benchmark name (matching the paper's Table 2 rows).
        category: MiBench category.
        source: Assembly source text.
        program: The assembled program.
        generate: ``generate(state, dataset)`` — initialize memory and
            registers for a run.
        verify: ``verify(state, dataset) -> bool`` — check the
            architectural results after a run against a Python reference.
        max_instructions: Per-scale execution budgets.
    """

    name: str
    category: str
    source: str
    program: Program
    generate: Callable[[MachineState, Dataset], None]
    verify: Callable[[MachineState, Dataset], bool]
    max_instructions: dict = field(
        default_factory=lambda: {"small": 400_000, "large": 4_000_000}
    )

    def dataset(self, scale: str, seed: int | None = None) -> Dataset:
        """Build the canonical dataset descriptor for a scale."""
        check_in("scale", scale, set(SCALES))
        if seed is None:
            seed = 11 if scale == "small" else 97
        return Dataset(scale=scale, seed=seed)

    def setup(self, dataset: Dataset) -> Callable[[MachineState], None]:
        """A ``setup(state)`` callable for the estimator API."""

        def _setup(state: MachineState) -> None:
            self.generate(state, dataset)

        return _setup

    def budget(self, scale: str) -> int:
        return self.max_instructions[scale]

    def run_spec(
        self, scale: str, seed: int | None = None
    ) -> tuple[Program, Callable[[MachineState], None], int]:
        """Everything one execution needs: ``(program, setup, budget)``.

        Replaces the hand-threaded ``setup(dataset(scale))`` +
        ``budget(scale)`` triple at every call site; ``seed`` overrides
        the scale's canonical dataset seed.
        """
        return (
            self.program,
            self.setup(self.dataset(scale, seed)),
            self.budget(scale),
        )


def make_workload(
    name: str,
    category: str,
    source: str,
    generate,
    verify,
    max_instructions=None,
) -> Workload:
    """Assemble and wrap a workload definition."""
    program = assemble(source, name=name)
    w = Workload(
        name=name,
        category=category,
        source=source,
        program=program,
        generate=generate,
        verify=verify,
    )
    if max_instructions:
        w.max_instructions = dict(max_instructions)
    return w
