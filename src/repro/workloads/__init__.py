"""The 12-benchmark suite (two per MiBench category, Section 6.2).

Each workload packages an assembly program, seeded small/large dataset
generators, and a Python reference verifier::

    from repro.workloads import load_workload, list_workloads

    wl = load_workload("bitcount")
    dataset = wl.dataset("small")
    setup = wl.setup(dataset)  # callable(state)
"""

from __future__ import annotations

from repro.workloads.base import Dataset, Workload, SCALES
from repro.workloads.automotive import build_basicmath, build_bitcount
from repro.workloads.network import build_dijkstra, build_patricia
from repro.workloads.security import build_pgp_encode, build_pgp_decode
from repro.workloads.consumer import build_tiff2bw, build_typeset
from repro.workloads.office import build_ghostscript, build_stringsearch
from repro.workloads.telecom import build_gsm_encode, build_gsm_decode

__all__ = [
    "Dataset",
    "Workload",
    "SCALES",
    "WORKLOAD_BUILDERS",
    "load_workload",
    "list_workloads",
]

#: Builders in the paper's Table 2 row order.
WORKLOAD_BUILDERS = {
    "basicmath": build_basicmath,
    "bitcount": build_bitcount,
    "dijkstra": build_dijkstra,
    "patricia": build_patricia,
    "pgp.encode": build_pgp_encode,
    "pgp.decode": build_pgp_decode,
    "tiff2bw": build_tiff2bw,
    "typeset": build_typeset,
    "ghostscript": build_ghostscript,
    "stringsearch": build_stringsearch,
    "gsm.encode": build_gsm_encode,
    "gsm.decode": build_gsm_decode,
}


def list_workloads() -> list[str]:
    """Benchmark names in Table 2 order."""
    return list(WORKLOAD_BUILDERS)


def load_workload(name: str) -> Workload:
    """Build the named workload (assembles the program)."""
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {list_workloads()}"
        ) from None
    return builder()
