"""Network-category workloads: ``dijkstra`` and ``patricia``.

MiBench analogues: ``dijkstra`` computes single-source shortest paths on a
dense adjacency matrix (repeated min-scan + relaxation, load/compare
heavy); ``patricia`` maintains a binary trie over the top 12 key bits
(pointer chasing, many small basic blocks — like the paper's patricia,
which has by far the most blocks per instruction).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.cpu.state import MachineState
from repro.workloads.base import Dataset, Workload, make_workload

__all__ = ["build_dijkstra", "build_patricia"]

_V_ADDR = 0x0FF0
_R_ADDR = 0x0FF4
_ADJ = 0x1000
_DIST = 0x4000
_VISITED = 0x4100
_INF = 0x7FFF

_DIJKSTRA_SRC = """
; dijkstra: repeated single-source shortest paths on a dense matrix.
        ld   r12, [r0+0x0FF4]   ; R repetitions
outer_loop:
        cmp  r12, 0
        beq  all_done
        ld   r7, [r0+0x0FF0]    ; V
; ---- initialize dist / visited
        li   r1, 0
init_loop:
        cmp  r1, r7
        bge  init_done
        li   r5, 0x7FFF
        li   r6, 0x4000
        add  r6, r6, r1
        st   r5, [r6+0]
        li   r5, 0
        li   r6, 0x4100
        add  r6, r6, r1
        st   r5, [r6+0]
        inc  r1
        ba   init_loop
init_done:
        li   r5, 0
        st   r5, [r0+0x4000]    ; dist[source=0] = 0
        li   r1, 0              ; visited count
iter_loop:
        cmp  r1, r7
        bge  dijkstra_end
; ---- select unvisited vertex with minimum distance
        li   r2, 0
        li   r3, 0x7FFF
        inc  r3                 ; best = 0x8000 (> any dist, unsigned)
        li   r4, 0
        li   r13, 0             ; found flag
scan_loop:
        cmp  r2, r7
        bge  scan_done
        li   r6, 0x4100
        add  r6, r6, r2
        ld   r5, [r6+0]
        cmp  r5, 0
        bne  scan_next
        li   r6, 0x4000
        add  r6, r6, r2
        ld   r5, [r6+0]
        cmp  r5, r3
        bcc  scan_next          ; dist[i] >= best (unsigned)
        mov  r3, r5
        mov  r4, r2
        li   r13, 1
scan_next:
        inc  r2
        ba   scan_loop
scan_done:
        cmp  r13, 0
        beq  dijkstra_end       ; nothing reachable left
        li   r6, 0x4100
        add  r6, r6, r4
        li   r5, 1
        st   r5, [r6+0]         ; visited[u] = 1
        li   r6, 0x4000
        add  r6, r6, r4
        ld   r8, [r6+0]         ; dist[u]
        mul  r9, r4, r7
        li   r10, 0x1000
        add  r9, r9, r10        ; adjacency row of u
        li   r2, 0
relax_loop:
        cmp  r2, r7
        bge  relax_done
        add  r6, r9, r2
        ld   r5, [r6+0]         ; w(u, v)
        cmp  r5, 0
        beq  relax_next
        add  r5, r5, r8         ; candidate = dist[u] + w
        li   r6, 0x4000
        add  r6, r6, r2
        ld   r11, [r6+0]
        cmp  r5, r11
        bcs  relax_store        ; candidate < dist[v] (unsigned borrow)
        ba   relax_next
relax_store:
        st   r5, [r6+0]
relax_next:
        inc  r2
        ba   relax_loop
relax_done:
        inc  r1
        ba   iter_loop
dijkstra_end:
        dec  r12
        ba   outer_loop
all_done:
        halt
"""


def _dijkstra_params(dataset: Dataset) -> dict:
    if dataset.scale == "small":
        v, reps = 14, 4
    else:
        v, reps = 20, 55
    rng = as_rng(dataset.seed)
    adj = rng.integers(1, 40, size=(v, v))
    mask = rng.random((v, v)) < 0.35
    adj = np.where(mask, adj, 0)
    np.fill_diagonal(adj, 0)
    return {"v": v, "reps": reps, "adj": adj}


def _dijkstra_generate(state: MachineState, dataset: Dataset) -> None:
    p = _dijkstra_params(dataset)
    dataset.params.update(p)
    state.write_mem(_V_ADDR, p["v"])
    state.write_mem(_R_ADDR, p["reps"])
    state.load_words(_ADJ, p["adj"].ravel())


def _dijkstra_reference(adj: np.ndarray) -> list[int]:
    v = adj.shape[0]
    dist = [_INF] * v
    visited = [False] * v
    dist[0] = 0
    for _ in range(v):
        best, u = 0x8000, None
        for i in range(v):
            if not visited[i] and dist[i] < best:
                best, u = dist[i], i
        if u is None:
            break
        visited[u] = True
        for w in range(v):
            weight = int(adj[u, w])
            if weight and dist[u] + weight < dist[w]:
                dist[w] = dist[u] + weight
    return dist


def _dijkstra_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _dijkstra_params(dataset)
    expected = _dijkstra_reference(p["adj"])
    return all(
        state.read_mem(_DIST + i) == expected[i] for i in range(p["v"])
    )


def build_dijkstra() -> Workload:
    return make_workload(
        "dijkstra",
        "network",
        _DIJKSTRA_SRC,
        _dijkstra_generate,
        _dijkstra_verify,
    )


# --------------------------------------------------------------------- #
# patricia
# --------------------------------------------------------------------- #

_N_ADDR = 0x0FF0
_KEYS = 0x1000
_POOL = 0x6000
_HITS_OUT = 0x4000
_NODES_OUT = 0x4001

_PATRICIA_SRC = """
; patricia: binary trie over the top 12 key bits (search then insert).
        ld   r10, [r0+0x0FF0]   ; N keys
        li   r8, 1              ; next free node index (0 is the root)
        li   r9, 0              ; search hits
        li   r1, 0              ; key index
key_loop:
        cmp  r1, r10
        bge  done
        li   r7, 0x1000
        add  r7, r7, r1
        ld   r2, [r7+0]         ; key
; ---- search
        li   r3, 0x6000         ; cur = root node address
        li   r4, 15             ; bit position
search_loop:
        srl  r5, r2, r4
        and  r5, r5, 1
        add  r7, r3, r5         ; child pointer field
        ld   r6, [r7+0]
        cmp  r6, 0
        beq  insert             ; missing child: not present
        mov  r3, r6
        subcc r4, r4, 1
        cmp  r4, 3
        bgt  search_loop
        ld   r5, [r3+2]         ; leaf key
        cmp  r5, r2
        bne  insert
        inc  r9                 ; hit: already inserted
        ba   next_key
; ---- insert (rewalk, allocating missing nodes)
insert:
        li   r3, 0x6000
        li   r4, 15
ins_loop:
        srl  r5, r2, r4
        and  r5, r5, 1
        add  r7, r3, r5
        ld   r6, [r7+0]
        cmp  r6, 0
        bne  ins_descend
        sll  r6, r8, 2          ; allocate: address = pool + 4 * index
        li   r11, 0x6000
        add  r6, r6, r11
        st   r6, [r7+0]
        inc  r8
ins_descend:
        mov  r3, r6
        subcc r4, r4, 1
        cmp  r4, 3
        bgt  ins_loop
        st   r2, [r3+2]         ; leaf stores the full key
next_key:
        inc  r1
        ba   key_loop
done:
        st   r9, [r0+0x4000]
        st   r8, [r0+0x4001]
        halt
"""


def _patricia_params(dataset: Dataset) -> dict:
    n = 48 if dataset.scale == "small" else 760
    rng = as_rng(dataset.seed)
    # Clustered keys: routing tables have shared prefixes, which also
    # exercises both trie reuse and collision overwrites.
    prefixes = rng.integers(0, 64, size=n) << 10
    keys = (prefixes | rng.integers(0, 1 << 10, size=n)) & 0xFFFF
    return {"n": n, "keys": keys}


def _patricia_reference(keys) -> tuple[int, int]:
    """Replay the trie: returns (hits, nodes allocated)."""
    children: dict[tuple, int] = {}  # path prefix -> node index
    leaf_key: dict[tuple, int] = {}
    next_free = 1
    hits = 0
    for key in (int(k) for k in keys):
        path = tuple((key >> b) & 1 for b in range(15, 3, -1))
        # Search: present iff all 12 children exist and leaf key matches.
        present = all(
            path[: d + 1] in children for d in range(12)
        ) and leaf_key.get(path) == key
        if present:
            hits += 1
            continue
        for d in range(12):
            prefix = path[: d + 1]
            if prefix not in children:
                children[prefix] = next_free
                next_free += 1
        leaf_key[path] = key
    return hits, next_free


def _patricia_generate(state: MachineState, dataset: Dataset) -> None:
    p = _patricia_params(dataset)
    dataset.params.update(p)
    state.write_mem(_N_ADDR, p["n"])
    state.load_words(_KEYS, p["keys"])


def _patricia_verify(state: MachineState, dataset: Dataset) -> bool:
    p = _patricia_params(dataset)
    hits, nodes = _patricia_reference(p["keys"])
    return (
        state.read_mem(_HITS_OUT) == hits & 0xFFFF
        and state.read_mem(_NODES_OUT) == nodes & 0xFFFF
    )


def build_patricia() -> Workload:
    return make_workload(
        "patricia",
        "network",
        _PATRICIA_SRC,
        _patricia_generate,
        _patricia_verify,
    )
