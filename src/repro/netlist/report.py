"""Netlist structure reporting.

Summarizes a netlist the way a synthesis report would: cell-type
composition, logic-depth and fanout distributions, per-stage breakdown,
and the critical-path profile under a library — the numbers a designer
checks before trusting any timing analysis built on top.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.netlist.gates import EndpointKind, GateType
from repro.netlist.library import TimingLibrary
from repro.netlist.netlist import Netlist

__all__ = ["NetlistReport", "analyze_netlist"]


@dataclass(slots=True)
class NetlistReport:
    """Structural and timing profile of a netlist.

    Attributes:
        cell_counts: Instances per cell type name.
        stage_composition: Per stage: combinational gate count, control
            endpoints, data endpoints.
        logic_depth: Per-gate levelization depth (combinational only).
        fanout: Per-gate fanout counts.
        endpoint_arrivals: Worst arrival per capture endpoint (ps), when a
            library was supplied.
    """

    cell_counts: dict[str, int]
    stage_composition: dict[int, dict[str, int]]
    logic_depth: np.ndarray
    fanout: np.ndarray
    endpoint_arrivals: dict[str, float] = field(default_factory=dict)

    @property
    def max_depth(self) -> int:
        return int(self.logic_depth.max()) if len(self.logic_depth) else 0

    @property
    def mean_fanout(self) -> float:
        return float(self.fanout.mean()) if len(self.fanout) else 0.0

    def depth_histogram(self, bins: int = 8) -> list[tuple[str, int]]:
        """Logic-depth histogram as (range label, count) rows."""
        if len(self.logic_depth) == 0:
            return []
        counts, edges = np.histogram(self.logic_depth, bins=bins)
        return [
            (f"{int(lo)}-{int(hi)}", int(c))
            for lo, hi, c in zip(edges[:-1], edges[1:], counts)
        ]

    def critical_endpoints(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` endpoints with the worst arrival times."""
        ranked = sorted(
            self.endpoint_arrivals.items(), key=lambda kv: -kv[1]
        )
        return ranked[:n]

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = ["netlist report", "=" * 40]
        lines.append("cell composition:")
        for name, count in sorted(
            self.cell_counts.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:8s} {count:6d}")
        lines.append(
            f"logic depth: max {self.max_depth}, "
            f"mean fanout {self.mean_fanout:.2f}"
        )
        lines.append("per-stage composition (comb/ctrl/data):")
        for stage, comp in sorted(self.stage_composition.items()):
            lines.append(
                f"  stage {stage}: {comp['combinational']:5d} / "
                f"{comp['control_endpoints']:3d} / "
                f"{comp['data_endpoints']:3d}"
            )
        if self.endpoint_arrivals:
            lines.append("most critical endpoints:")
            for name, arrival in self.critical_endpoints():
                lines.append(f"  {name:24s} {arrival:8.1f} ps")
        return "\n".join(lines)


def analyze_netlist(
    netlist: Netlist, library: TimingLibrary | None = None
) -> NetlistReport:
    """Build a :class:`NetlistReport` for ``netlist``."""
    cell_counts = Counter(g.gtype.value for g in netlist.gates)

    stage_composition: dict[int, dict[str, int]] = {}
    for s in range(netlist.num_stages):
        stage_composition[s] = {
            "combinational": sum(
                1
                for g in netlist.gates
                if g.is_combinational and g.stage == s
            ),
            "control_endpoints": len(
                netlist.endpoints(stage=s, kind=EndpointKind.CONTROL)
            ),
            "data_endpoints": len(
                netlist.endpoints(stage=s, kind=EndpointKind.DATA)
            ),
        }

    depth = np.zeros(len(netlist), dtype=int)
    for gid in netlist.topological_order():
        gate = netlist.gate(gid)
        depth[gid] = 1 + max(
            (depth[i] for i in gate.inputs if netlist.gate(i).is_combinational),
            default=0,
        )
    comb_ids = [g.gid for g in netlist.gates if g.is_combinational]
    fanout = np.array([netlist.fanout_count(g) for g in comb_ids])

    arrivals: dict[str, float] = {}
    if library is not None:
        from repro.sta.sta import StaticTimingAnalysis

        sta = StaticTimingAnalysis(netlist, library)
        for e in sta.capture_endpoints():
            arrivals[netlist.gate(e).name] = sta.endpoint_arrival(e)

    return NetlistReport(
        cell_counts=dict(cell_counts),
        stage_composition=stage_composition,
        logic_depth=depth[comb_ids],
        fanout=fanout,
        endpoint_arrivals=arrivals,
    )
