"""The netlist graph N: gates as vertices, nets as edges (Section 3).

A :class:`Netlist` owns a set of :class:`~repro.netlist.gates.Gate` objects
with dense integer ids.  Flip-flops and input ports are *endpoints*; each
endpoint exposes its Q output to the combinational fabric, and each DFF's
single input pin is the D capture point terminating timing paths.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.netlist.gates import EndpointKind, Gate, GateType
from repro.netlist.library import TimingLibrary

__all__ = ["Netlist"]


class Netlist:
    """A pipelined gate-level netlist.

    Args:
        name: Netlist name (informational).
        num_stages: Number of pipeline stages ``S(N)``.
    """

    def __init__(self, name: str = "netlist", num_stages: int = 1) -> None:
        if num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {num_stages}")
        self.name = name
        self.num_stages = num_stages
        self._gates: list[Gate] = []
        self._by_name: dict[str, int] = {}
        self._fanout: list[list[int]] | None = None
        self._topo: list[int] | None = None
        self._delays: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_gate(
        self,
        name: str,
        gtype: GateType,
        inputs: tuple[int, ...] | list[int] = (),
        stage: int = 0,
        endpoint_kind: EndpointKind | None = None,
        x: float = 0.0,
        y: float = 0.0,
    ) -> int:
        """Add a gate and return its id.

        Input ids must refer to already-added gates, which keeps the
        combinational fabric acyclic by construction (DFF inputs may be
        connected later via :meth:`connect_dff` to allow sequential loops).
        """
        if name in self._by_name:
            raise ValueError(f"duplicate gate name {name!r}")
        if not 0 <= stage < self.num_stages:
            raise ValueError(
                f"stage {stage} out of range for {self.num_stages}-stage netlist"
            )
        gid = len(self._gates)
        inputs = tuple(int(i) for i in inputs)
        for i in inputs:
            if not 0 <= i < gid:
                raise ValueError(
                    f"gate {name!r}: input id {i} does not refer to an "
                    "already-added gate"
                )
        gate = Gate(
            gid=gid,
            name=name,
            gtype=gtype,
            inputs=inputs,
            stage=stage,
            endpoint_kind=endpoint_kind,
            x=x,
            y=y,
        )
        self._gates.append(gate)
        self._by_name[name] = gid
        self._invalidate_caches()
        return gid

    def add_input(
        self,
        name: str,
        stage: int = 0,
        kind: EndpointKind = EndpointKind.CONTROL,
        x: float = 0.0,
        y: float = 0.0,
    ) -> int:
        """Add a primary-input endpoint."""
        return self.add_gate(
            name, GateType.INPUT, (), stage=stage, endpoint_kind=kind, x=x, y=y
        )

    def add_dff(
        self,
        name: str,
        driver: int | None,
        stage: int,
        kind: EndpointKind,
        x: float = 0.0,
        y: float = 0.0,
    ) -> int:
        """Add a D-flip-flop endpoint.

        ``driver`` is the gate feeding the D pin; pass ``None`` to connect
        later with :meth:`connect_dff` (needed for sequential feedback).
        """
        if driver is None:
            # Temporarily self-driven via a sentinel resolved at connect time.
            if name in self._by_name:
                raise ValueError(f"duplicate gate name {name!r}")
            gid = len(self._gates)
            gate = Gate(
                gid=gid,
                name=name,
                gtype=GateType.DFF,
                inputs=(gid,),  # placeholder self-loop, must be reconnected
                stage=stage,
                endpoint_kind=kind,
                x=x,
                y=y,
            )
            self._gates.append(gate)
            self._by_name[name] = gid
            self._invalidate_caches()
            return gid
        return self.add_gate(
            name, GateType.DFF, (driver,), stage=stage, endpoint_kind=kind, x=x, y=y
        )

    def connect_dff(self, dff_id: int, driver: int) -> None:
        """Connect (or reconnect) the D pin of flip-flop ``dff_id``."""
        gate = self._gates[dff_id]
        if gate.gtype != GateType.DFF:
            raise ValueError(f"gate {gate.name!r} is not a DFF")
        if not 0 <= driver < len(self._gates):
            raise ValueError(f"driver id {driver} out of range")
        gate.inputs = (int(driver),)
        self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        self._fanout = None
        self._topo = None
        self._delays = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self):
        return iter(self._gates)

    def gate(self, gid: int) -> Gate:
        """Return the gate with id ``gid``."""
        return self._gates[gid]

    def gate_by_name(self, name: str) -> Gate:
        """Return the gate with hierarchical name ``name``."""
        return self._gates[self._by_name[name]]

    @property
    def gates(self) -> list[Gate]:
        """All gates, in id order."""
        return self._gates

    def endpoints(
        self, stage: int | None = None, kind: EndpointKind | None = None
    ) -> list[Gate]:
        """Return endpoints ``E(N, s)``, optionally filtered by stage/kind."""
        result = []
        for g in self._gates:
            if not g.is_endpoint:
                continue
            if stage is not None and g.stage != stage:
                continue
            if kind is not None and g.endpoint_kind != kind:
                continue
            result.append(g)
        return result

    def combinational_gates(self) -> list[Gate]:
        """All combinational (non-endpoint) gates."""
        return [g for g in self._gates if g.is_combinational]

    def fanout(self, gid: int) -> list[int]:
        """Ids of gates whose inputs include ``gid``."""
        if self._fanout is None:
            fan: list[list[int]] = [[] for _ in self._gates]
            for g in self._gates:
                for i in g.inputs:
                    if g.gtype == GateType.DFF and i == g.gid:
                        continue  # unresolved placeholder self-loop
                    fan[i].append(g.gid)
            self._fanout = fan
        return self._fanout[gid]

    def fanout_count(self, gid: int) -> int:
        """Number of loads driven by gate ``gid``."""
        return len(self.fanout(gid))

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def topological_order(self) -> list[int]:
        """Ids of combinational gates in topological (driver-first) order.

        Endpoints are sources (their Q outputs) and sinks (DFF D pins); only
        combinational gates appear in the returned order.  Raises
        ``ValueError`` if the combinational fabric contains a cycle.
        """
        if self._topo is not None:
            return self._topo
        indeg = {}
        for g in self._gates:
            if g.is_combinational:
                indeg[g.gid] = sum(
                    1 for i in g.inputs if self._gates[i].is_combinational
                )
        ready = deque(gid for gid, d in indeg.items() if d == 0)
        order: list[int] = []
        while ready:
            gid = ready.popleft()
            order.append(gid)
            for out in self.fanout(gid):
                if out in indeg:
                    indeg[out] -= 1
                    if indeg[out] == 0:
                        ready.append(out)
        if len(order) != len(indeg):
            raise ValueError("combinational fabric contains a cycle")
        self._topo = order
        return order

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        Verifies that every DFF has a resolved driver, the combinational
        fabric is acyclic, and every combinational gate lies on some
        source-to-endpoint route (no dangling logic).
        """
        for g in self._gates:
            if g.gtype == GateType.DFF and g.inputs == (g.gid,):
                raise ValueError(f"DFF {g.name!r} has an unconnected D pin")
        self.topological_order()
        # Reachability forward from endpoints (Q) and backward from D pins.
        fwd = {g.gid for g in self._gates if g.is_endpoint}
        for gid in self.topological_order():
            if any(i in fwd for i in self._gates[gid].inputs):
                fwd.add(gid)
        bwd: set[int] = set()
        stack = [i for g in self._gates if g.gtype == GateType.DFF for i in g.inputs]
        while stack:
            gid = stack.pop()
            if gid in bwd or not self._gates[gid].is_combinational:
                continue
            bwd.add(gid)
            stack.extend(self._gates[gid].inputs)
        for g in self._gates:
            if g.is_combinational and (g.gid not in fwd or g.gid not in bwd):
                raise ValueError(
                    f"combinational gate {g.name!r} is dangling "
                    "(not on any endpoint-to-endpoint path)"
                )

    # ------------------------------------------------------------------ #
    # Timing annotations
    # ------------------------------------------------------------------ #

    def nominal_delays(self, library: TimingLibrary) -> np.ndarray:
        """Per-gate nominal delays (ps) under ``library``'s load model.

        Index ``i`` of the returned array is the delay contributed by gate
        ``i`` when it appears on a timing path: clock-to-Q for endpoint
        sources, pin-to-pin for combinational cells.
        """
        delays = np.zeros(len(self._gates))
        for g in self._gates:
            delays[g.gid] = library.delay(g.gtype, self.fanout_count(g.gid))
        return delays

    def sigma_fractions(self, library: TimingLibrary) -> np.ndarray:
        """Per-gate one-sigma variability fractions from ``library``."""
        return np.array([library.sigma_fraction(g.gtype) for g in self._gates])

    def placements(self) -> np.ndarray:
        """``(n_gates, 2)`` array of (x, y) placement coordinates."""
        return np.array([[g.x, g.y] for g in self._gates])

    def summary(self) -> dict:
        """Return basic statistics about the netlist."""
        n_comb = sum(1 for g in self._gates if g.is_combinational)
        n_ctrl = len(self.endpoints(kind=EndpointKind.CONTROL))
        n_data = len(self.endpoints(kind=EndpointKind.DATA))
        return {
            "name": self.name,
            "stages": self.num_stages,
            "gates": len(self._gates),
            "combinational": n_comb,
            "control_endpoints": n_ctrl,
            "data_endpoints": n_data,
        }
