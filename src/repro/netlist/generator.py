"""Synthetic 6-stage in-order pipeline netlist generator.

Stands in for the synthesized LEON3 integer unit of Section 6.1.  Each stage
combines a random control-logic cloud (fetch/decode/steer state) with real
gate-level datapath blocks (PC incrementer, immediate extraction, bypass
muxing, ALU with ripple adder / logic unit / barrel shifter / array
multiplier, memory alignment, write-back select).  Endpoints are split into
control and data sets per Section 4, and every gate receives placement
coordinates consumed by the spatial process-variation model.

The generated netlist is *stimulus-driven*: flip-flop Q values and primary
inputs are written per cycle by the characterization layer (from the
instruction occupying each stage), and the combinational fabric is then
evaluated to determine activation — the "functional simulation coupled with
STA" arrangement of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import as_rng, check_positive
from repro.netlist.builders import (
    build_array_multiplier,
    build_barrel_shifter,
    build_comparator,
    build_logic_unit,
    build_random_cloud,
    build_ripple_adder,
    constant_zero,
)
from repro.netlist.gates import EndpointKind, GateType
from repro.netlist.netlist import Netlist

__all__ = ["PipelineConfig", "PipelineNetlist", "generate_pipeline", "STAGE_NAMES"]

#: Stage mnemonics of the modelled 6-stage integer pipeline.
STAGE_NAMES = ("IF", "ID", "RA", "EX", "ME", "WB")


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Parameters of the synthetic pipeline netlist.

    Attributes:
        data_width: Datapath width in bits.
        mult_width: Operand width of the array multiplier slice.
        shift_bits: Number of shift-amount bits (barrel-shifter levels).
        ctrl_regs: Control flip-flops per pipeline boundary.
        cloud_gates: Gates per per-stage control cloud.
        depth_bias: Depth bias of the random control clouds.
        stage_pitch: Placement pitch between stage regions (micrometres).
        seed: Seed for the deterministic random construction.
    """

    data_width: int = 16
    mult_width: int = 6
    shift_bits: int = 4
    ctrl_regs: int = 22
    cloud_gates: int = 180
    depth_bias: float = 0.55
    stage_pitch: float = 100.0
    seed: int = 2019

    def __post_init__(self) -> None:
        check_positive("data_width", self.data_width)
        check_positive("mult_width", self.mult_width)
        check_positive("shift_bits", self.shift_bits)
        check_positive("ctrl_regs", self.ctrl_regs)
        check_positive("cloud_gates", self.cloud_gates)
        if self.mult_width > self.data_width:
            raise ValueError("mult_width cannot exceed data_width")
        if (1 << self.shift_bits) > 2 * self.data_width:
            raise ValueError("shift_bits too large for data_width")


@dataclass(slots=True)
class PipelineNetlist:
    """A generated pipeline netlist plus its logical signal map.

    Attributes:
        netlist: The underlying :class:`Netlist`.
        config: Generation parameters.
        ctrl_src: Per-stage lists of *control source* gate ids — the
            flip-flops/inputs whose values encode the instruction currently
            occupying the stage.
        data_src: Per-stage dicts of named *data source* buses — the
            flip-flops/inputs carrying operand-derived values of the
            instruction currently occupying the stage.
        capture: Per-stage dicts of named capture flip-flop buses (the
            endpoints whose DTS Algorithm 1 evaluates for that stage).
        stage_names: Stage mnemonics, one per stage (family-specific:
            the in-order core uses :data:`STAGE_NAMES`, other core
            families supply their own).
    """

    netlist: Netlist
    config: PipelineConfig
    ctrl_src: list[list[int]] = field(default_factory=list)
    data_src: list[dict[str, list[int]]] = field(default_factory=list)
    capture: list[dict[str, list[int]]] = field(default_factory=list)
    stage_names: tuple[str, ...] = STAGE_NAMES

    @property
    def num_stages(self) -> int:
        return self.netlist.num_stages

    def all_sources(self) -> list[int]:
        """All encoder-driven source gate ids, in a stable order."""
        seen: list[int] = []
        for s in range(self.num_stages):
            seen.extend(self.ctrl_src[s])
            for bus in self.data_src[s].values():
                seen.extend(bus)
        # Feedback buses may repeat across stages; keep first occurrence.
        out, have = [], set()
        for gid in seen:
            if gid not in have:
                have.add(gid)
                out.append(gid)
        return out


def _ff_column(
    netlist: Netlist,
    prefix: str,
    count: int,
    stage: int,
    kind: EndpointKind,
    x: float,
    y0: float = 4.0,
    pitch: float = 4.0,
) -> list[int]:
    return [
        netlist.add_dff(f"{prefix}{i}", None, stage, kind, x=x, y=y0 + i * pitch)
        for i in range(count)
    ]


def _or_tree(netlist: Netlist, bits: list[int], prefix: str, stage: int) -> int:
    level = list(bits)
    depth = 0
    while len(level) > 1:
        depth += 1
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                netlist.add_gate(
                    f"{prefix}/or_d{depth}_{i}",
                    GateType.OR2,
                    (level[i], level[i + 1]),
                    stage,
                )
            )
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _xor_tree(netlist: Netlist, bits: list[int], prefix: str, stage: int) -> int:
    level = list(bits)
    depth = 0
    while len(level) > 1:
        depth += 1
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                netlist.add_gate(
                    f"{prefix}/xor_d{depth}_{i}",
                    GateType.XOR2,
                    (level[i], level[i + 1]),
                    stage,
                )
            )
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _connect_cloud_to_ffs(
    netlist: Netlist,
    cloud_all: list[int],
    heads: list[int],
    ffs: list[int],
    prefix: str,
    stage: int,
    rng,
) -> None:
    """Wire cloud outputs into capture flip-flops, consuming every head.

    Surplus heads are merged pairwise with XOR gates; if there are fewer
    heads than flip-flops, additional drivers are drawn from the cloud body.
    """
    heads = list(heads)
    merged = 0
    # Balanced pairwise reduction: each round halves the surplus, keeping
    # the merge logic logarithmic in depth rather than a serial chain.
    while len(heads) > len(ffs):
        surplus = len(heads) - len(ffs)
        nxt: list[int] = []
        i = 0
        while surplus > 0 and i + 1 < len(heads):
            nxt.append(
                netlist.add_gate(
                    f"{prefix}/merge{merged}",
                    GateType.XOR2,
                    (heads[i], heads[i + 1]),
                    stage,
                )
            )
            merged += 1
            surplus -= 1
            i += 2
        nxt.extend(heads[i:])
        heads = nxt
    drivers = list(heads)
    while len(drivers) < len(ffs):
        drivers.append(cloud_all[int(rng.integers(len(cloud_all)))])
    for ff, drv in zip(ffs, drivers):
        netlist.connect_dff(ff, drv)


def generate_pipeline(config: PipelineConfig | None = None) -> PipelineNetlist:
    """Generate the synthetic 6-stage pipeline netlist.

    The construction is fully deterministic for a given ``config``.
    """
    cfg = config or PipelineConfig()
    rng = as_rng(cfg.seed)
    w = cfg.data_width
    nl = Netlist(name="ts_pipeline", num_stages=len(STAGE_NAMES))
    pitch = cfg.stage_pitch

    def sx(stage: int, frac: float) -> float:
        return stage * pitch + frac * pitch

    # ------------------------------------------------------------------ #
    # Sources created up front (feedback-friendly).
    # ------------------------------------------------------------------ #
    instr = [
        nl.add_input(f"if/instr{i}", 0, EndpointKind.CONTROL, x=sx(0, 0.02), y=4.0 + 4 * i)
        for i in range(cfg.ctrl_regs)
    ]
    pc = _ff_column(nl, "if/pc", w, 0, EndpointKind.CONTROL, x=sx(0, 0.06))
    # A gate's ``stage`` attribute is its *capture* stage: the pipeline
    # stage whose logic drives its D pin (Algorithm 1 analyzes the
    # endpoints of the stage that produces their next values).  Boundary
    # register ``ctrl_state[s]`` sources stage ``s`` but is captured by
    # stage ``s - 1``'s cloud.
    ctrl_state = [
        _ff_column(
            nl, f"{STAGE_NAMES[s].lower()}/cstate", cfg.ctrl_regs,
            max(s - 1, 0), EndpointKind.CONTROL, x=sx(s, 0.10),
        )
        for s in range(6)
    ]
    ir = _ff_column(nl, "id/ir", cfg.ctrl_regs, 0, EndpointKind.CONTROL, x=sx(1, 0.06))
    rf_a = [
        nl.add_input(f"ra/rfa{i}", 2, EndpointKind.DATA, x=sx(2, 0.02), y=4.0 + 4 * i)
        for i in range(w)
    ]
    rf_b = [
        nl.add_input(f"ra/rfb{i}", 2, EndpointKind.DATA, x=sx(2, 0.04), y=4.0 + 4 * i)
        for i in range(w)
    ]
    op_a = _ff_column(nl, "ex/opa", w, 2, EndpointKind.DATA, x=sx(3, 0.04))
    op_b = _ff_column(nl, "ex/opb", w, 2, EndpointKind.DATA, x=sx(3, 0.08))
    ex_result = _ff_column(nl, "ex/res", w, 3, EndpointKind.DATA, x=sx(3, 0.92))
    cc = _ff_column(nl, "ex/cc", 4, 3, EndpointKind.DATA, x=sx(3, 0.96))
    mem_d = [
        nl.add_input(f"me/memd{i}", 4, EndpointKind.DATA, x=sx(4, 0.02), y=4.0 + 4 * i)
        for i in range(w)
    ]
    ma = _ff_column(nl, "me/ma", w, 4, EndpointKind.DATA, x=sx(4, 0.06))
    me_result = _ff_column(nl, "me/res", w, 4, EndpointKind.DATA, x=sx(4, 0.92))
    wb_src = _ff_column(nl, "wb/src", w, 5, EndpointKind.DATA, x=sx(5, 0.04))
    wb_result = _ff_column(nl, "wb/res", w, 5, EndpointKind.DATA, x=sx(5, 0.92))

    ctrl_src: list[list[int]] = [[] for _ in range(6)]
    data_src: list[dict[str, list[int]]] = [{} for _ in range(6)]
    capture: list[dict[str, list[int]]] = [{} for _ in range(6)]

    # ------------------------------------------------------------------ #
    # Stage 0 — IF: PC incrementer + fetch-control cloud.
    # ------------------------------------------------------------------ #
    # Constant-0 for the IF arithmetic comes from a dedicated tie-low
    # input port: deriving it from a live signal (constant_zero) would
    # create false static paths launching at that signal's flip-flop.
    zero_if = nl.add_input(
        "if/tielo", 0, EndpointKind.CONTROL, x=sx(0, 0.25), y=2.0
    )
    one_if = nl.add_gate("if/tie1", GateType.NOT, (zero_if,), 0)
    stride = [one_if] + [zero_if] * (w - 1)
    pc_add = build_ripple_adder(
        nl, pc, stride, zero_if, prefix="if/pcinc", stage=0,
        origin=(sx(0, 0.3), 4.0),
    )
    pc_next = _ff_column(nl, "if/pcnext", w, 0, EndpointKind.CONTROL, x=sx(0, 0.94))
    for ff, drv in zip(pc_next, pc_add.bus("sum")):
        nl.connect_dff(ff, drv)
    # Next-PC redirect cone — the classic critical control path of a fetch
    # unit: the registered branch displacement is added to the registered
    # next-PC, the predicted target is compared against the actual PC, and
    # the resulting redirect signal crosses the die through a
    # buffer/steering chain.  Every cell sits on one single-transition
    # chain launched from registered, per-instruction-toggling values, so
    # the cone's *statically* critical paths are exactly the ones dynamic
    # activity can sensitize — it activates coherently whenever the target
    # addition rips a long carry (displacement-dependent), giving the
    # control network genuine operand-dependent near-critical DTS.
    fimm_bits = w // 2
    fetch_imm = _ff_column(
        nl, "if/fimm", fimm_bits, 0, EndpointKind.CONTROL, x=sx(0, 0.28)
    )
    for ff, drv in zip(fetch_imm, ir[:fimm_bits]):
        nl.connect_dff(ff, drv)  # displacement field of the fetched word
    sext = [fetch_imm[i] if i < fimm_bits else fetch_imm[-1] for i in range(w)]
    target_add = build_ripple_adder(
        nl,
        pc_next,
        sext,
        zero_if,
        prefix="if/target",
        stage=0,
        origin=(sx(0, 0.5), 4.0),
    )
    # The redirect signal rides the target adder's carry-out: a single
    # transition front down one chain, so a long displacement-dependent
    # carry ripple activates the whole path coherently.  Tree-shaped
    # structures (e.g. a comparator) would statically look just as slow
    # but could never be fully activated.
    redirect = target_add.signal("cout")
    for i in range(6):
        # Global redirect distribution: repeater + steering mux per hop
        # (the mux's both-data-pins wiring makes it a pure repeater that
        # still costs a mux delay — a select-stable steering stage).
        inv = nl.add_gate(f"if/rchain_n{i}", GateType.NOT, (redirect,), 0)
        redirect = nl.add_gate(
            f"if/rchain_m{i}",
            GateType.MUX2,
            (ctrl_state[0][i % cfg.ctrl_regs], inv, inv),
            0,
        )
    redirect_ff = nl.add_dff(
        "if/redirect_ff",
        redirect,
        0,
        EndpointKind.CONTROL,
        x=sx(0, 0.97),
        y=2.0,
    )
    # Predicted-target register captures the target adder's sum bits
    # (per-bit capture keeps every path a coherently-activatable chain).
    target_reg = _ff_column(
        nl, "if/targreg", w, 0, EndpointKind.CONTROL, x=sx(0, 0.95)
    )
    for ff, drv in zip(target_reg, target_add.bus("sum")):
        nl.connect_dff(ff, drv)
    # Prediction check on registered values (short, never critical).
    predict_cmp = build_comparator(
        nl, pc_next, pc, prefix="if/predict", stage=0,
        origin=(sx(0, 0.8), 4.0),
    )
    nl.add_dff(
        "if/predict_ff",
        predict_cmp.signal("eq"),
        0,
        EndpointKind.CONTROL,
        x=sx(0, 0.98),
        y=2.0,
    )
    cloud_if = build_random_cloud(
        nl, instr + pc + ctrl_state[0], cfg.cloud_gates, "if/cloud", 0,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(0, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_if.bus("all"), cloud_if.bus("heads"), ir + ctrl_state[1],
        "if/wire", 0, rng,
    )
    ctrl_src[0] = instr + ctrl_state[0]
    # The PC is value-driven (the fetch address of the instruction in IF):
    # sequential fetch increments it by one — short carry chains — while
    # taken branches jump, rippling the full incrementer.  ``fetch_imm``
    # carries the branch displacement feeding the redirect cone.
    data_src[0] = {"pc": pc, "fetch_imm": fetch_imm, "pc_next": pc_next}
    capture[0] = {
        "ir": ir,
        "pc_next": pc_next,
        "redirect": [redirect_ff],
        "cstate": ctrl_state[1],
    }

    # ------------------------------------------------------------------ #
    # Stage 1 — ID: decode cloud + immediate extraction.
    # ------------------------------------------------------------------ #
    imm_mux: list[int] = []
    for i in range(w):
        lo = ir[i % len(ir)]
        hi = ir[(i * 3 + 5) % len(ir)]
        sel = ctrl_state[1][i % len(ctrl_state[1])]
        imm_mux.append(
            nl.add_gate(f"id/immmux{i}", GateType.MUX2, (sel, lo, hi), 1)
        )
    imm = _ff_column(nl, "id/imm", w, 1, EndpointKind.DATA, x=sx(1, 0.92))
    for ff, drv in zip(imm, imm_mux):
        nl.connect_dff(ff, drv)
    cloud_id = build_random_cloud(
        nl, ir + ctrl_state[1], int(cfg.cloud_gates * 1.4), "id/cloud", 1,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(1, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_id.bus("all"), cloud_id.bus("heads"), ctrl_state[2],
        "id/wire", 1, rng,
    )
    ctrl_src[1] = ir + ctrl_state[1]
    capture[1] = {"imm": imm, "cstate": ctrl_state[2]}

    # ------------------------------------------------------------------ #
    # Stage 2 — RA: operand read with bypass network.
    # ------------------------------------------------------------------ #
    byp_a: list[int] = []
    byp_b: list[int] = []
    sel_ex = ctrl_state[2][0]
    sel_me = ctrl_state[2][1]
    sel_imm = ctrl_state[2][2]
    for i in range(w):
        m1 = nl.add_gate(
            f"ra/bypa_ex{i}", GateType.MUX2, (sel_ex, rf_a[i], ex_result[i]), 2
        )
        m2 = nl.add_gate(
            f"ra/bypa_me{i}", GateType.MUX2, (sel_me, m1, me_result[i]), 2
        )
        byp_a.append(m2)
        m3 = nl.add_gate(
            f"ra/bypb_ex{i}", GateType.MUX2, (sel_ex, rf_b[i], ex_result[i]), 2
        )
        m4 = nl.add_gate(
            f"ra/bypb_imm{i}", GateType.MUX2, (sel_imm, m3, imm[i]), 2
        )
        byp_b.append(m4)
    for ff, drv in zip(op_a, byp_a):
        nl.connect_dff(ff, drv)
    for ff, drv in zip(op_b, byp_b):
        nl.connect_dff(ff, drv)
    cloud_ra = build_random_cloud(
        nl, ctrl_state[2], cfg.cloud_gates, "ra/cloud", 2,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(2, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_ra.bus("all"), cloud_ra.bus("heads"), ctrl_state[3],
        "ra/wire", 2, rng,
    )
    ctrl_src[2] = list(ctrl_state[2])
    data_src[2] = {"rf_a": rf_a, "rf_b": rf_b, "imm": imm}
    capture[2] = {"op_a": op_a, "op_b": op_b, "cstate": ctrl_state[3]}

    # ------------------------------------------------------------------ #
    # Stage 3 — EX: ALU (adder, logic, shifter, multiplier) + flags.
    # ------------------------------------------------------------------ #
    cst3 = ctrl_state[3]
    sub_sel = cst3[3]
    op0, op1 = cst3[4], cst3[5]
    alu_sel0, alu_sel1 = cst3[6], cst3[7]
    b_eff = [
        nl.add_gate(f"ex/bsub{i}", GateType.XOR2, (op_b[i], sub_sel), 3)
        for i in range(w)
    ]
    adder = build_ripple_adder(
        nl, op_a, b_eff, sub_sel, prefix="ex/add", stage=3,
        origin=(sx(3, 0.25), 4.0),
    )
    logic = build_logic_unit(
        nl, op_a, op_b, op0, op1, prefix="ex/log", stage=3,
        origin=(sx(3, 0.45), 4.0),
    )
    shifter = build_barrel_shifter(
        nl, op_a, op_b[: cfg.shift_bits], prefix="ex/shf", stage=3,
        origin=(sx(3, 0.6), 4.0),
    )
    mult = build_array_multiplier(
        nl,
        op_a[: cfg.mult_width],
        op_b[: cfg.mult_width],
        prefix="ex/mul",
        stage=3,
        origin=(sx(3, 0.72), 4.0),
    )
    zero_ex = constant_zero(nl, op_a[0], "ex", 3)
    prod = mult.bus("product") + [zero_ex] * (w - cfg.mult_width)
    alu_out: list[int] = []
    for i in range(w):
        m0 = nl.add_gate(
            f"ex/alum0_{i}", GateType.MUX2,
            (alu_sel0, adder.bus("sum")[i], logic.bus("out")[i]), 3,
        )
        m1 = nl.add_gate(
            f"ex/alum1_{i}", GateType.MUX2,
            (alu_sel0, shifter.bus("out")[i], prod[i]), 3,
        )
        alu_out.append(
            nl.add_gate(f"ex/aluout{i}", GateType.MUX2, (alu_sel1, m0, m1), 3)
        )
    for ff, drv in zip(ex_result, alu_out):
        nl.connect_dff(ff, drv)
    zflag = nl.add_gate(
        "ex/zflag", GateType.NOT, (_or_tree(nl, alu_out, "ex/zf", 3),), 3
    )
    nflag = nl.add_gate("ex/nflag", GateType.BUF, (alu_out[-1],), 3)
    cflag = nl.add_gate("ex/cflag", GateType.BUF, (adder.signal("cout"),), 3)
    vflag = _xor_tree(nl, alu_out[: 4], "ex/vf", 3)
    for ff, drv in zip(cc, (zflag, nflag, cflag, vflag)):
        nl.connect_dff(ff, drv)
    cloud_ex = build_random_cloud(
        nl, cst3 + cc, cfg.cloud_gates, "ex/cloud", 3,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(3, 0.2), 10.0), extent=(0.5 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_ex.bus("all"), cloud_ex.bus("heads"), ctrl_state[4],
        "ex/wire", 3, rng,
    )
    ctrl_src[3] = list(cst3)
    # ``cc`` carries the flags produced by the previous arithmetic
    # instruction (still resident in the flag register during EX).
    data_src[3] = {"op_a": op_a, "op_b": op_b, "cc": cc}
    capture[3] = {"ex_result": ex_result, "cc": cc, "cstate": ctrl_state[4]}

    # ------------------------------------------------------------------ #
    # Stage 4 — ME: load alignment + memory-result select.
    # ------------------------------------------------------------------ #
    align = build_barrel_shifter(
        nl, mem_d, ma[:2], prefix="me/align", stage=4,
        origin=(sx(4, 0.3), 4.0),
    )
    ld_sel = ctrl_state[4][0]
    me_mux = [
        nl.add_gate(
            f"me/resmux{i}", GateType.MUX2, (ld_sel, ma[i], align.bus("out")[i]), 4
        )
        for i in range(w)
    ]
    for ff, drv in zip(me_result, me_mux):
        nl.connect_dff(ff, drv)
    cloud_me = build_random_cloud(
        nl, ctrl_state[4], cfg.cloud_gates, "me/cloud", 4,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(4, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_me.bus("all"), cloud_me.bus("heads"), ctrl_state[5],
        "me/wire", 4, rng,
    )
    ctrl_src[4] = list(ctrl_state[4])
    # ``ex_result`` holds the ALU result of the instruction now in ME (it
    # was computed while that instruction occupied EX), feeding the RA
    # bypass network with genuine cross-instruction value coupling.
    data_src[4] = {"mem_d": mem_d, "ma": ma, "ex_result": ex_result}
    capture[4] = {"me_result": me_result, "cstate": ctrl_state[5]}

    # ------------------------------------------------------------------ #
    # Stage 5 — WB: write-back select + commit cloud.
    # ------------------------------------------------------------------ #
    wb_sel = ctrl_state[5][0]
    wb_mux = [
        nl.add_gate(
            f"wb/mux{i}", GateType.MUX2, (wb_sel, wb_src[i], me_result[i]), 5
        )
        for i in range(w)
    ]
    for ff, drv in zip(wb_result, wb_mux):
        nl.connect_dff(ff, drv)
    commit = _ff_column(
        nl, "wb/commit", cfg.ctrl_regs // 2, 5, EndpointKind.CONTROL, x=sx(5, 0.96)
    )
    cloud_wb = build_random_cloud(
        nl, ctrl_state[5], cfg.cloud_gates, "wb/cloud", 5,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(5, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_wb.bus("all"), cloud_wb.bus("heads"), commit, "wb/wire", 5, rng
    )
    ctrl_src[5] = list(ctrl_state[5])
    data_src[5] = {"wb_src": wb_src, "me_result": me_result}
    capture[5] = {"wb_result": wb_result, "commit": commit}

    # ------------------------------------------------------------------ #
    # State registers whose next-state logic is a plain register transfer:
    # PC <- incremented PC, memory address <- ALU result, write-back source
    # <- ALU result pipeline, fetch control state <- fetch cloud.
    # ------------------------------------------------------------------ #
    for ff, drv in zip(pc, pc_next):
        nl.connect_dff(ff, drv)
    for ff, drv in zip(ma, ex_result):
        nl.connect_dff(ff, drv)
    for ff, drv in zip(wb_src, ex_result):
        nl.connect_dff(ff, drv)
    cloud_if_all = cloud_if.bus("all")
    for i, ff in enumerate(ctrl_state[0]):
        nl.connect_dff(ff, cloud_if_all[int(rng.integers(len(cloud_if_all)))])

    # ------------------------------------------------------------------ #
    # Tie off loose combinational outputs (unused carry-outs etc.) into
    # per-stage observation registers so no logic dangles.
    # ------------------------------------------------------------------ #
    loose_by_stage: dict[int, list[int]] = {}
    for g in list(nl.gates):
        if g.is_combinational and nl.fanout_count(g.gid) == 0:
            loose_by_stage.setdefault(g.stage, []).append(g.gid)
    for s, loose in sorted(loose_by_stage.items()):
        head = _xor_tree(nl, loose, f"{STAGE_NAMES[s].lower()}/tieoff", s)
        nl.add_dff(
            f"{STAGE_NAMES[s].lower()}/tieoff_ff",
            head,
            s,
            EndpointKind.DATA,  # loose ends are datapath carries
            x=sx(s, 0.99),
            y=2.0,
        )

    # Final placement sweep: glue logic created without explicit
    # coordinates (muxes, trees, merges) is scattered within its stage's
    # placement region so the spatial variation model sees every gate.
    for g in nl.gates:
        if g.is_combinational and g.x == 0.0 and g.y == 0.0:
            g.x = sx(g.stage, 0.15 + 0.7 * float(rng.random()))
            g.y = 4.0 + 90.0 * float(rng.random())

    nl.validate()
    return PipelineNetlist(
        netlist=nl,
        config=cfg,
        ctrl_src=ctrl_src,
        data_src=data_src,
        capture=capture,
    )
