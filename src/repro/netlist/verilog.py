"""Structural Verilog export and import.

A real release of this framework would interoperate with synthesis flows,
so netlists round-trip through a gate-level structural Verilog subset: one
module, one wire per gate output, primitive instances for the cell types
(``DFF`` instances with ``.D``/``.Q`` pins; combinational cells with
``.A``/``.B``/``.C`` inputs and ``.Y`` output).  Placement and endpoint
classification travel in structured comments so a round trip is lossless.
"""

from __future__ import annotations

import re

from repro.netlist.gates import EndpointKind, GateType
from repro.netlist.netlist import Netlist

__all__ = ["write_verilog", "read_verilog"]

_CELL_NAMES = {
    GateType.BUF: "BUF",
    GateType.NOT: "INV",
    GateType.AND2: "AND2",
    GateType.OR2: "OR2",
    GateType.NAND2: "NAND2",
    GateType.NOR2: "NOR2",
    GateType.XOR2: "XOR2",
    GateType.XNOR2: "XNOR2",
    GateType.MUX2: "MUX2",
    GateType.MAJ3: "MAJ3",
    GateType.DFF: "DFF",
}
_NAME_TO_TYPE = {v: k for k, v in _CELL_NAMES.items()}
_PIN_ORDER = ("A", "B", "C")


def _wire(gate) -> str:
    return "n%d" % gate.gid


def _escape(name: str) -> str:
    return name.replace("/", "__").replace(".", "_")


def write_verilog(netlist: Netlist, file, module: str | None = None) -> None:
    """Write the netlist as structural Verilog."""
    w = file.write
    module = module or _escape(netlist.name)
    inputs = [g for g in netlist.gates if g.gtype == GateType.INPUT]
    w(f"// repro structural netlist: {netlist.name}\n")
    w(f"// stages={netlist.num_stages} gates={len(netlist)}\n")
    ports = ["clk"] + [_wire(g) for g in inputs]
    w(f"module {module} ({', '.join(ports)});\n")
    w("  input clk;\n")
    for g in inputs:
        w(f"  input {_wire(g)};\n")
    for g in netlist.gates:
        if g.gtype != GateType.INPUT:
            w(f"  wire {_wire(g)};\n")
    for g in netlist.gates:
        meta = (
            f"// name={g.name} stage={g.stage} x={g.x:.3f} y={g.y:.3f}"
            + (f" kind={g.endpoint_kind.value}" if g.endpoint_kind else "")
        )
        if g.gtype == GateType.INPUT:
            w(f"  {meta} gid={g.gid}\n")
            continue
        if g.gtype == GateType.DFF:
            pins = f".C(clk), .D({_wire(netlist.gate(g.inputs[0]))}), .Q({_wire(g)})"
        else:
            ins = ", ".join(
                f".{_PIN_ORDER[i]}({_wire(netlist.gate(src))})"
                for i, src in enumerate(g.inputs)
            )
            pins = f"{ins}, .Y({_wire(g)})"
        w(f"  {_CELL_NAMES[g.gtype]} u{g.gid} ({pins}); {meta}\n")
    w("endmodule\n")


_INSTANCE_RE = re.compile(
    r"^\s*(?P<cell>\w+)\s+u(?P<gid>\d+)\s*\((?P<pins>.*)\)\s*;\s*"
    r"//\s*(?P<meta>.*)$"
)
_INPUT_META_RE = re.compile(r"^\s*//\s*(?P<meta>name=.*)$")
_PIN_RE = re.compile(r"\.(?P<pin>\w+)\(\s*(?P<net>\w+)\s*\)")
_HEADER_RE = re.compile(r"//\s*stages=(\d+)")


def _parse_meta(meta: str) -> dict:
    out = {}
    for token in meta.split():
        if "=" in token:
            key, value = token.split("=", 1)
            out[key] = value
    return out


def read_verilog(file) -> Netlist:
    """Parse structural Verilog written by :func:`write_verilog`.

    Reconstructs names, stages, placement, and endpoint kinds from the
    structured comments; gate ids are preserved (instances may appear in
    any order).
    """
    text = file.read() if hasattr(file, "read") else str(file)
    header = _HEADER_RE.search(text)
    if not header:
        raise ValueError("missing repro netlist header comment")
    num_stages = int(header.group(1))
    module_name = re.search(r"module\s+(\w+)", text)
    nl = Netlist(
        name=module_name.group(1) if module_name else "imported",
        num_stages=num_stages,
    )

    entries = []  # (gid, gtype, inputs(net names), meta)
    input_metas = []
    for line in text.splitlines():
        m = _INSTANCE_RE.match(line)
        if m:
            pins = dict(
                (p.group("pin"), p.group("net"))
                for p in _PIN_RE.finditer(m.group("pins"))
            )
            entries.append(
                (
                    int(m.group("gid")),
                    _NAME_TO_TYPE[m.group("cell")],
                    pins,
                    _parse_meta(m.group("meta")),
                )
            )
            continue
        m = _INPUT_META_RE.match(line)
        if m and "kind=" in m.group("meta"):
            meta = _parse_meta(m.group("meta"))
            input_metas.append(meta)

    def net_to_gid(net: str) -> int:
        if not net.startswith("n"):
            raise ValueError(f"unexpected net name {net!r}")
        return int(net[1:])

    # Rebuild in gid order (inputs carry their gid in the meta comment).
    records: dict[int, tuple] = {}
    for meta in input_metas:
        records[int(meta["gid"])] = (GateType.INPUT, {}, meta)
    for gid, gtype, pins, meta in entries:
        records[gid] = (gtype, pins, meta)
    if sorted(records) != list(range(len(records))):
        raise ValueError("netlist instance ids are not dense")

    pending_dff: list[tuple[int, int]] = []
    for gid in range(len(records)):
        gtype, pins, meta = records[gid]
        kind = (
            EndpointKind(meta["kind"]) if "kind" in meta else None
        )
        stage = int(meta.get("stage", 0))
        x = float(meta.get("x", 0.0))
        y = float(meta.get("y", 0.0))
        name = meta.get("name", f"g{gid}")
        if gtype == GateType.INPUT:
            nl.add_input(name, stage, kind or EndpointKind.CONTROL, x=x, y=y)
        elif gtype == GateType.DFF:
            nl.add_dff(name, None, stage, kind or EndpointKind.CONTROL, x=x, y=y)
            pending_dff.append((gid, net_to_gid(pins["D"])))
        else:
            inputs = tuple(
                net_to_gid(pins[_PIN_ORDER[i]])
                for i in range(len(pins) - 1)  # minus the Y pin
            )
            nl.add_gate(name, gtype, inputs, stage, x=x, y=y)
    for dff, driver in pending_dff:
        nl.connect_dff(dff, driver)
    return nl
