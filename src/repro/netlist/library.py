"""A miniature Liberty-style timing library.

Provides nominal cell delays with a linear load model, flip-flop timing
parameters (clock-to-Q, setup), and the per-cell variability fraction used
by the process-variation model.  Numbers are loosely calibrated to a 45 nm
standard-cell library at the typical corner so that the synthetic pipeline's
maximum frequency lands in the several-hundred-MHz range the paper reports.

Libraries serialize to/from a JSON document (the role a ``.lib`` file
plays in a real flow), so alternative corners can be stored beside the
code and diffed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro._util import check_nonnegative, check_positive
from repro.netlist.gates import GateType

__all__ = ["CellTiming", "TimingLibrary"]


@dataclass(frozen=True, slots=True)
class CellTiming:
    """Timing data for one cell type.

    Attributes:
        intrinsic_delay: Pin-to-pin delay at zero load, in picoseconds.
        load_delay: Added delay per fanout connection, in picoseconds.
        sigma_fraction: One-sigma process variability as a fraction of the
            nominal delay.
    """

    intrinsic_delay: float
    load_delay: float
    sigma_fraction: float

    def __post_init__(self) -> None:
        check_nonnegative("intrinsic_delay", self.intrinsic_delay)
        check_nonnegative("load_delay", self.load_delay)
        check_nonnegative("sigma_fraction", self.sigma_fraction)


_DEFAULT_CELLS: dict[GateType, CellTiming] = {
    GateType.INPUT: CellTiming(0.0, 0.0, 0.0),
    GateType.DFF: CellTiming(70.0, 4.0, 0.05),  # clock-to-Q
    GateType.BUF: CellTiming(20.0, 3.5, 0.05),
    GateType.NOT: CellTiming(14.0, 3.5, 0.05),
    GateType.AND2: CellTiming(28.0, 4.0, 0.05),
    GateType.OR2: CellTiming(30.0, 4.0, 0.05),
    GateType.NAND2: CellTiming(22.0, 4.0, 0.05),
    GateType.NOR2: CellTiming(24.0, 4.0, 0.05),
    GateType.XOR2: CellTiming(42.0, 4.5, 0.05),
    GateType.XNOR2: CellTiming(44.0, 4.5, 0.05),
    GateType.MUX2: CellTiming(38.0, 4.5, 0.05),
    GateType.MAJ3: CellTiming(46.0, 5.0, 0.05),
}


class TimingLibrary:
    """Cell timing lookups with a linear fanout-load delay model.

    Args:
        cells: Optional overrides, merged over the built-in 45 nm-like
            defaults.
        setup_time: Flip-flop setup time in picoseconds.
        derate: Global multiplicative delay derate.  Values above 1 model a
            slower operating condition (e.g. the reduced-voltage corner used
            for guardbanding in Section 6.1); below 1 a faster one.
    """

    def __init__(
        self,
        cells: dict[GateType, CellTiming] | None = None,
        setup_time: float = 32.0,
        derate: float = 1.0,
    ) -> None:
        check_nonnegative("setup_time", setup_time)
        check_positive("derate", derate)
        self._cells = dict(_DEFAULT_CELLS)
        if cells:
            self._cells.update(cells)
        self.setup_time = setup_time
        self.derate = derate

    def cell(self, gtype: GateType) -> CellTiming:
        """Return the :class:`CellTiming` record for ``gtype``."""
        return self._cells[gtype]

    def delay(self, gtype: GateType, fanout: int = 1) -> float:
        """Nominal delay of a ``gtype`` instance driving ``fanout`` loads (ps)."""
        check_nonnegative("fanout", fanout)
        cell = self._cells[gtype]
        return self.derate * (cell.intrinsic_delay + cell.load_delay * fanout)

    def sigma_fraction(self, gtype: GateType) -> float:
        """One-sigma variability of ``gtype`` as a fraction of nominal delay."""
        return self._cells[gtype].sigma_fraction

    def with_derate(self, derate: float) -> "TimingLibrary":
        """Return a copy of this library with a different global derate."""
        return TimingLibrary(
            cells=self._cells, setup_time=self.setup_time, derate=derate
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialize the library to a JSON document."""
        doc = {
            "setup_time": self.setup_time,
            "derate": self.derate,
            "cells": {
                gtype.value: {
                    "intrinsic_delay": cell.intrinsic_delay,
                    "load_delay": cell.load_delay,
                    "sigma_fraction": cell.sigma_fraction,
                }
                for gtype, cell in sorted(
                    self._cells.items(), key=lambda kv: kv[0].value
                )
            },
        }
        return json.dumps(doc, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "TimingLibrary":
        """Load a library from :meth:`to_json` output."""
        doc = json.loads(text)
        try:
            cells = {
                GateType(name): CellTiming(
                    intrinsic_delay=float(spec["intrinsic_delay"]),
                    load_delay=float(spec["load_delay"]),
                    sigma_fraction=float(spec["sigma_fraction"]),
                )
                for name, spec in doc["cells"].items()
            }
        except (KeyError, ValueError) as exc:
            raise ValueError(f"malformed library document: {exc}") from exc
        return cls(
            cells=cells,
            setup_time=float(doc.get("setup_time", 32.0)),
            derate=float(doc.get("derate", 1.0)),
        )

    def save(self, path) -> None:
        """Write the library JSON to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "TimingLibrary":
        """Read a library JSON from ``path``."""
        with open(path) as handle:
            return cls.from_json(handle.read())
