"""Combinational circuit builders.

These helpers add real gate-level arithmetic blocks to a
:class:`~repro.netlist.netlist.Netlist`.  They matter for fidelity: the
paper's instruction error model is operand-value dependent, and genuine
circuits (ripple-carry chains, barrel-shifter mux trees, array multipliers)
give the value-dependent path activation that synthetic random logic cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

__all__ = [
    "BlockOutputs",
    "build_ripple_adder",
    "build_logic_unit",
    "build_barrel_shifter",
    "build_array_multiplier",
    "build_comparator",
    "build_random_cloud",
    "constant_zero",
]


@dataclass(slots=True)
class BlockOutputs:
    """Output nets of a builder: named buses and scalar signals."""

    buses: dict[str, list[int]] = field(default_factory=dict)
    signals: dict[str, int] = field(default_factory=dict)

    def bus(self, name: str) -> list[int]:
        return self.buses[name]

    def signal(self, name: str) -> int:
        return self.signals[name]


def constant_zero(
    netlist: Netlist, seed_signal: int, prefix: str, stage: int = 0
) -> int:
    """Create a constant-0 net as ``seed_signal AND NOT seed_signal``.

    Gate-level netlists have no literal constants; tie-low cells are modelled
    as a contradiction of an arbitrary existing signal.
    """
    inv = netlist.add_gate(f"{prefix}/tie0_inv", GateType.NOT, (seed_signal,), stage)
    return netlist.add_gate(
        f"{prefix}/tie0", GateType.AND2, (seed_signal, inv), stage
    )


def _place(netlist: Netlist, gid: int, x: float, y: float) -> int:
    gate = netlist.gate(gid)
    gate.x = x
    gate.y = y
    return gid


def build_ripple_adder(
    netlist: Netlist,
    a: list[int],
    b: list[int],
    cin: int,
    prefix: str,
    stage: int = 0,
    origin: tuple[float, float] = (0.0, 0.0),
    pitch: float = 4.0,
) -> BlockOutputs:
    """Add a ripple-carry adder; returns bus ``sum`` and signal ``cout``.

    Bit ``i`` of the full adder is ``sum_i = a_i ^ b_i ^ c_i`` and
    ``c_{i+1} = MAJ(a_i, b_i, c_i)``, so the carry chain forms the classic
    long operand-dependent critical path.
    """
    if len(a) != len(b):
        raise ValueError(f"operand widths differ: {len(a)} vs {len(b)}")
    x0, y0 = origin
    carry = cin
    sums: list[int] = []
    for i, (ai, bi) in enumerate(zip(a, b)):
        y = y0 + i * pitch
        half = netlist.add_gate(f"{prefix}/ha{i}", GateType.XOR2, (ai, bi), stage)
        _place(netlist, half, x0, y)
        s = netlist.add_gate(f"{prefix}/sum{i}", GateType.XOR2, (half, carry), stage)
        _place(netlist, s, x0 + pitch, y)
        c = netlist.add_gate(
            f"{prefix}/carry{i}", GateType.MAJ3, (ai, bi, carry), stage
        )
        _place(netlist, c, x0 + 2 * pitch, y)
        sums.append(s)
        carry = c
    return BlockOutputs(buses={"sum": sums}, signals={"cout": carry})


def build_logic_unit(
    netlist: Netlist,
    a: list[int],
    b: list[int],
    op0: int,
    op1: int,
    prefix: str,
    stage: int = 0,
    origin: tuple[float, float] = (0.0, 0.0),
    pitch: float = 4.0,
) -> BlockOutputs:
    """Add a bitwise logic unit selecting AND/OR/XOR/NOT-A via (op1, op0).

    Returns bus ``out``.  Encoding: 00 → AND, 01 → OR, 10 → XOR, 11 → ~A.
    """
    if len(a) != len(b):
        raise ValueError(f"operand widths differ: {len(a)} vs {len(b)}")
    x0, y0 = origin
    outs: list[int] = []
    for i, (ai, bi) in enumerate(zip(a, b)):
        y = y0 + i * pitch
        g_and = netlist.add_gate(f"{prefix}/and{i}", GateType.AND2, (ai, bi), stage)
        g_or = netlist.add_gate(f"{prefix}/or{i}", GateType.OR2, (ai, bi), stage)
        g_xor = netlist.add_gate(f"{prefix}/xor{i}", GateType.XOR2, (ai, bi), stage)
        g_not = netlist.add_gate(f"{prefix}/not{i}", GateType.NOT, (ai,), stage)
        m0 = netlist.add_gate(
            f"{prefix}/m0_{i}", GateType.MUX2, (op0, g_and, g_or), stage
        )
        m1 = netlist.add_gate(
            f"{prefix}/m1_{i}", GateType.MUX2, (op0, g_xor, g_not), stage
        )
        out = netlist.add_gate(
            f"{prefix}/out{i}", GateType.MUX2, (op1, m0, m1), stage
        )
        for col, gid in enumerate((g_and, g_or, g_xor, g_not, m0, m1, out)):
            _place(netlist, gid, x0 + col * pitch, y)
        outs.append(out)
    return BlockOutputs(buses={"out": outs})


def build_barrel_shifter(
    netlist: Netlist,
    data: list[int],
    shamt: list[int],
    prefix: str,
    stage: int = 0,
    right: bool = True,
    origin: tuple[float, float] = (0.0, 0.0),
    pitch: float = 4.0,
) -> BlockOutputs:
    """Add a logarithmic barrel shifter (zero fill); returns bus ``out``.

    ``shamt`` is little-endian: level ``k`` conditionally shifts by ``2**k``.
    """
    width = len(data)
    if not shamt:
        raise ValueError("shifter needs at least one shift-amount bit")
    x0, y0 = origin
    zero = constant_zero(netlist, data[0], prefix, stage)
    _place(netlist, zero, x0, y0 - pitch)
    current = list(data)
    for level, sel in enumerate(shamt):
        amount = 1 << level
        nxt: list[int] = []
        for i in range(width):
            src = i + amount if right else i - amount
            shifted = current[src] if 0 <= src < width else zero
            m = netlist.add_gate(
                f"{prefix}/l{level}_m{i}",
                GateType.MUX2,
                (sel, current[i], shifted),
                stage,
            )
            _place(netlist, m, x0 + (level + 1) * 2 * pitch, y0 + i * pitch)
            nxt.append(m)
        current = nxt
    return BlockOutputs(buses={"out": current})


def build_array_multiplier(
    netlist: Netlist,
    a: list[int],
    b: list[int],
    prefix: str,
    stage: int = 0,
    origin: tuple[float, float] = (0.0, 0.0),
    pitch: float = 4.0,
) -> BlockOutputs:
    """Add an unsigned array multiplier; returns the low ``len(a)`` product bits.

    Implemented as AND partial products reduced with ripple-carry rows — the
    classic operand-dependent deep arithmetic block.  Only the low half of
    the product is produced (matching a result register of operand width).
    """
    wa, wb = len(a), len(b)
    if wa == 0 or wb == 0:
        raise ValueError("multiplier operands must be non-empty")
    x0, y0 = origin
    zero = constant_zero(netlist, a[0], prefix, stage)
    _place(netlist, zero, x0, y0 - pitch)

    def partial_row(j: int) -> list[int]:
        row = []
        for i in range(wa):
            if i + j < wa:
                g = netlist.add_gate(
                    f"{prefix}/pp{j}_{i}", GateType.AND2, (a[i], b[j]), stage
                )
                _place(netlist, g, x0 + j * 3 * pitch, y0 + i * pitch)
                row.append(g)
        return row

    acc = partial_row(0) + [zero] * 0
    for j in range(1, wb):
        row = partial_row(j)
        # Align: row contributes to product bits j .. wa-1.
        addend = [zero] * j + row
        addend = addend[:wa]
        adder = build_ripple_adder(
            netlist,
            acc,
            addend,
            zero,
            prefix=f"{prefix}/row{j}",
            stage=stage,
            origin=(x0 + j * 3 * pitch + pitch, y0),
            pitch=pitch,
        )
        acc = adder.bus("sum")
    return BlockOutputs(buses={"product": acc})


def build_comparator(
    netlist: Netlist,
    a: list[int],
    b: list[int],
    prefix: str,
    stage: int = 0,
    origin: tuple[float, float] = (0.0, 0.0),
    pitch: float = 4.0,
) -> BlockOutputs:
    """Add an equality comparator; returns signal ``eq`` (balanced AND tree)."""
    if len(a) != len(b):
        raise ValueError(f"operand widths differ: {len(a)} vs {len(b)}")
    x0, y0 = origin
    level = [
        _place(
            netlist,
            netlist.add_gate(f"{prefix}/xn{i}", GateType.XNOR2, (ai, bi), stage),
            x0,
            y0 + i * pitch,
        )
        for i, (ai, bi) in enumerate(zip(a, b))
    ]
    depth = 0
    while len(level) > 1:
        depth += 1
        nxt = []
        for i in range(0, len(level) - 1, 2):
            g = netlist.add_gate(
                f"{prefix}/and_d{depth}_{i}",
                GateType.AND2,
                (level[i], level[i + 1]),
                stage,
            )
            _place(netlist, g, x0 + depth * 2 * pitch, y0 + i * pitch)
            nxt.append(g)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return BlockOutputs(signals={"eq": level[0]})


# Cell mix of the random control clouds, weighted toward toggle-
# transparent cells (XOR/XNOR/NOT/BUF propagate input transitions
# unconditionally; AND/OR families gate them).  Real decode/steer logic
# has high switching correlation along its cones — a uniformly random
# AND/OR cloud would almost never activate a full path, starving the
# control-network DTS analysis of Section 4.
_CLOUD_TYPES = (
    [GateType.XOR2] * 3
    + [GateType.XNOR2] * 2
    + [GateType.NOT] * 2
    + [GateType.BUF]
    + [GateType.MUX2] * 2
    + [GateType.AND2]
    + [GateType.OR2]
    + [GateType.NAND2]
    + [GateType.NOR2]
)


def build_random_cloud(
    netlist: Netlist,
    inputs: list[int],
    n_gates: int,
    prefix: str,
    stage: int = 0,
    depth_bias: float = 0.6,
    seed=0,
    origin: tuple[float, float] = (0.0, 0.0),
    extent: tuple[float, float] = (60.0, 60.0),
) -> BlockOutputs:
    """Add a random combinational cloud modelling stage control logic.

    ``depth_bias`` in (0, 1) controls how strongly new gates prefer recently
    added gates as inputs — higher values produce deeper logic (longer
    control paths).  Returns bus ``heads``: gates with no fanout inside the
    cloud, which the caller must connect onward (e.g. to control flip-flops)
    to keep the netlist free of dangling logic.

    The construction is deterministic for a given ``seed``.
    """
    if not inputs:
        raise ValueError("random cloud needs at least one input")
    if n_gates < 1:
        raise ValueError(f"n_gates must be >= 1, got {n_gates}")
    if not 0.0 < depth_bias < 1.0:
        raise ValueError(f"depth_bias must be in (0, 1), got {depth_bias}")
    rng = as_rng(seed)
    x0, y0 = origin
    ex, ey = extent
    pool = list(inputs)
    created: list[int] = []
    has_fanout: set[int] = set()
    n_inputs = len(inputs)
    for idx in range(n_gates):
        gtype = _CLOUD_TYPES[rng.integers(len(_CLOUD_TYPES))]
        arity = {GateType.NOT: 1, GateType.BUF: 1, GateType.MUX2: 3}.get(
            gtype, 2
        )
        chosen: list[int] = []
        for _ in range(arity):
            # Geometric-ish bias toward the most recently created gates.
            if created and rng.random() < depth_bias:
                back = int(rng.geometric(0.5))
                pick = created[max(0, len(created) - back)]
            else:
                pick = pool[int(rng.integers(n_inputs))]
            chosen.append(pick)
        gid = netlist.add_gate(
            f"{prefix}/g{idx}", gtype, tuple(chosen), stage
        )
        _place(
            netlist,
            gid,
            x0 + float(rng.random()) * ex,
            y0 + float(rng.random()) * ey,
        )
        created.append(gid)
        has_fanout.update(chosen)
    heads = [g for g in created if g not in has_fanout]
    return BlockOutputs(buses={"heads": heads, "all": created})
