"""Synthetic 8-stage speculative out-of-order (Tomasulo) pipeline netlist.

The second core family's machine: an in-order front end (fetch, decode,
rename) feeding reservation stations, out-of-order issue, a single
common data bus, and in-order commit through a reorder buffer::

    IF -> ID -> RN -> IS -> EX -> ME -> WB -> CM

Construction reuses the in-order generator's building blocks
(:mod:`repro.netlist.builders`) and follows the same conventions: each
stage pairs a random control cloud with real gate-level datapath
structures, endpoints split into control and data sets, every gate
placed for the spatial variation model, and control/data/capture signal
maps published through :class:`~repro.netlist.generator.PipelineNetlist`.

Family-specific structures replace the in-order bypass network: the
rename stage carries a map-table CAM and reorder-buffer tail pointer,
the issue stage carries CDB-tag wakeup comparators, a select chain, and
the Tomasulo operand-capture muxes (reservation-station value vs. CDB
forward), the write-back stage is the CDB broadcast with its tag match,
and the commit stage retires through head-pointer bookkeeping.  The EX
complex is the same ALU arrangement as the in-order core — its
control-select bit positions match, so the scheduler's semantic
:func:`~repro.cpu.pipeline._ex_overrides` apply unchanged.
"""

from __future__ import annotations

from repro._util import as_rng
from repro.netlist.builders import (
    build_array_multiplier,
    build_barrel_shifter,
    build_comparator,
    build_logic_unit,
    build_random_cloud,
    build_ripple_adder,
    constant_zero,
)
from repro.netlist.gates import EndpointKind, GateType
from repro.netlist.generator import (
    PipelineConfig,
    PipelineNetlist,
    _connect_cloud_to_ffs,
    _ff_column,
    _or_tree,
    _xor_tree,
)
from repro.netlist.netlist import Netlist

__all__ = ["OOO_STAGE_NAMES", "TAG_BITS", "generate_ooo_pipeline"]

#: Stage mnemonics of the modelled Tomasulo machine.
OOO_STAGE_NAMES = ("IF", "ID", "RN", "IS", "EX", "ME", "WB", "CM")

#: Reorder-buffer tag width (pointers, CAM entries, CDB tag).
TAG_BITS = 5

#: Reservation-station entries with wakeup comparators in IS.
_RS_ENTRIES = 4

#: Map-table CAM entries in RN.
_CAM_ENTRIES = 8


def generate_ooo_pipeline(config: PipelineConfig | None = None) -> PipelineNetlist:
    """Generate the synthetic 8-stage Tomasulo pipeline netlist.

    The construction is fully deterministic for a given ``config`` (the
    same :class:`PipelineConfig` the in-order generator takes; the extra
    out-of-order structure widths are fixed module constants).
    """
    cfg = config or PipelineConfig()
    rng = as_rng(cfg.seed)
    w = cfg.data_width
    n_stages = len(OOO_STAGE_NAMES)
    nl = Netlist(name="ooo_tomasulo", num_stages=n_stages)
    pitch = cfg.stage_pitch

    def sx(stage: int, frac: float) -> float:
        return stage * pitch + frac * pitch

    def tag_slice(regs: list[int], entry: int) -> list[int]:
        """A TAG_BITS-wide slice of a control register column."""
        return [regs[(TAG_BITS * entry + k) % len(regs)] for k in range(TAG_BITS)]

    # ------------------------------------------------------------------ #
    # Sources created up front (feedback-friendly).
    # ------------------------------------------------------------------ #
    instr = [
        nl.add_input(f"if/instr{i}", 0, EndpointKind.CONTROL, x=sx(0, 0.02), y=4.0 + 4 * i)
        for i in range(cfg.ctrl_regs)
    ]
    pc = _ff_column(nl, "if/pc", w, 0, EndpointKind.CONTROL, x=sx(0, 0.06))
    # Boundary register ``ctrl_state[s]`` sources stage ``s`` but is
    # captured by stage ``s - 1``'s cloud (same convention as the
    # in-order generator: a gate's stage is its *capture* stage).
    ctrl_state = [
        _ff_column(
            nl, f"{OOO_STAGE_NAMES[s].lower()}/cstate", cfg.ctrl_regs,
            max(s - 1, 0), EndpointKind.CONTROL, x=sx(s, 0.10),
        )
        for s in range(n_stages)
    ]
    ir = _ff_column(nl, "id/ir", cfg.ctrl_regs, 0, EndpointKind.CONTROL, x=sx(1, 0.06))
    rn_tag = [
        nl.add_input(f"rn/tag{i}", 2, EndpointKind.DATA, x=sx(2, 0.02), y=4.0 + 4 * i)
        for i in range(TAG_BITS)
    ]
    rs_a = [
        nl.add_input(f"is/rsa{i}", 3, EndpointKind.DATA, x=sx(3, 0.02), y=4.0 + 4 * i)
        for i in range(w)
    ]
    rs_b = [
        nl.add_input(f"is/rsb{i}", 3, EndpointKind.DATA, x=sx(3, 0.04), y=4.0 + 4 * i)
        for i in range(w)
    ]
    op_a = _ff_column(nl, "ex/opa", w, 3, EndpointKind.DATA, x=sx(4, 0.04))
    op_b = _ff_column(nl, "ex/opb", w, 3, EndpointKind.DATA, x=sx(4, 0.08))
    ex_result = _ff_column(nl, "ex/res", w, 4, EndpointKind.DATA, x=sx(4, 0.92))
    cc = _ff_column(nl, "ex/cc", 4, 4, EndpointKind.DATA, x=sx(4, 0.96))
    mem_d = [
        nl.add_input(f"me/memd{i}", 5, EndpointKind.DATA, x=sx(5, 0.02), y=4.0 + 4 * i)
        for i in range(w)
    ]
    ma = _ff_column(nl, "me/ma", w, 5, EndpointKind.DATA, x=sx(5, 0.06))
    me_result = _ff_column(nl, "me/res", w, 5, EndpointKind.DATA, x=sx(5, 0.92))
    cdb_val = _ff_column(nl, "wb/cdbval", w, 6, EndpointKind.DATA, x=sx(6, 0.04))
    cdb_tag = _ff_column(nl, "wb/cdbtag", TAG_BITS, 6, EndpointKind.DATA, x=sx(6, 0.08))
    wb_result = _ff_column(nl, "wb/res", w, 6, EndpointKind.DATA, x=sx(6, 0.92))
    cm_val = _ff_column(nl, "cm/val", w, 7, EndpointKind.DATA, x=sx(7, 0.04))

    ctrl_src: list[list[int]] = [[] for _ in range(n_stages)]
    data_src: list[dict[str, list[int]]] = [{} for _ in range(n_stages)]
    capture: list[dict[str, list[int]]] = [{} for _ in range(n_stages)]

    # ------------------------------------------------------------------ #
    # Stage 0 — IF: PC incrementer + redirect cone + fetch cloud.
    # (Same fetch unit as the in-order core: the front end of the
    # Tomasulo machine is in-order.)
    # ------------------------------------------------------------------ #
    zero_if = nl.add_input(
        "if/tielo", 0, EndpointKind.CONTROL, x=sx(0, 0.25), y=2.0
    )
    one_if = nl.add_gate("if/tie1", GateType.NOT, (zero_if,), 0)
    stride = [one_if] + [zero_if] * (w - 1)
    pc_add = build_ripple_adder(
        nl, pc, stride, zero_if, prefix="if/pcinc", stage=0,
        origin=(sx(0, 0.3), 4.0),
    )
    pc_next = _ff_column(nl, "if/pcnext", w, 0, EndpointKind.CONTROL, x=sx(0, 0.94))
    for ff, drv in zip(pc_next, pc_add.bus("sum")):
        nl.connect_dff(ff, drv)
    fimm_bits = w // 2
    fetch_imm = _ff_column(
        nl, "if/fimm", fimm_bits, 0, EndpointKind.CONTROL, x=sx(0, 0.28)
    )
    for ff, drv in zip(fetch_imm, ir[:fimm_bits]):
        nl.connect_dff(ff, drv)
    sext = [fetch_imm[i] if i < fimm_bits else fetch_imm[-1] for i in range(w)]
    target_add = build_ripple_adder(
        nl, pc_next, sext, zero_if, prefix="if/target", stage=0,
        origin=(sx(0, 0.5), 4.0),
    )
    # Redirect cone: carry-out of the target adder crosses the die
    # through a repeater/steering chain (see the in-order generator for
    # why this single-transition chain is the right critical structure).
    redirect = target_add.signal("cout")
    for i in range(6):
        inv = nl.add_gate(f"if/rchain_n{i}", GateType.NOT, (redirect,), 0)
        redirect = nl.add_gate(
            f"if/rchain_m{i}",
            GateType.MUX2,
            (ctrl_state[0][i % cfg.ctrl_regs], inv, inv),
            0,
        )
    redirect_ff = nl.add_dff(
        "if/redirect_ff", redirect, 0, EndpointKind.CONTROL,
        x=sx(0, 0.97), y=2.0,
    )
    target_reg = _ff_column(
        nl, "if/targreg", w, 0, EndpointKind.CONTROL, x=sx(0, 0.95)
    )
    for ff, drv in zip(target_reg, target_add.bus("sum")):
        nl.connect_dff(ff, drv)
    predict_cmp = build_comparator(
        nl, pc_next, pc, prefix="if/predict", stage=0,
        origin=(sx(0, 0.8), 4.0),
    )
    nl.add_dff(
        "if/predict_ff", predict_cmp.signal("eq"), 0, EndpointKind.CONTROL,
        x=sx(0, 0.98), y=2.0,
    )
    cloud_if = build_random_cloud(
        nl, instr + pc + ctrl_state[0], cfg.cloud_gates, "if/cloud", 0,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(0, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_if.bus("all"), cloud_if.bus("heads"), ir + ctrl_state[1],
        "if/wire", 0, rng,
    )
    ctrl_src[0] = instr + ctrl_state[0]
    data_src[0] = {"pc": pc, "fetch_imm": fetch_imm, "pc_next": pc_next}
    capture[0] = {
        "ir": ir,
        "pc_next": pc_next,
        "redirect": [redirect_ff],
        "cstate": ctrl_state[1],
    }

    # ------------------------------------------------------------------ #
    # Stage 1 — ID: decode cloud + immediate extraction.
    # ------------------------------------------------------------------ #
    imm_mux: list[int] = []
    for i in range(w):
        lo = ir[i % len(ir)]
        hi = ir[(i * 3 + 5) % len(ir)]
        sel = ctrl_state[1][i % len(ctrl_state[1])]
        imm_mux.append(
            nl.add_gate(f"id/immmux{i}", GateType.MUX2, (sel, lo, hi), 1)
        )
    imm = _ff_column(nl, "id/imm", w, 1, EndpointKind.DATA, x=sx(1, 0.92))
    for ff, drv in zip(imm, imm_mux):
        nl.connect_dff(ff, drv)
    cloud_id = build_random_cloud(
        nl, ir + ctrl_state[1], int(cfg.cloud_gates * 1.4), "id/cloud", 1,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(1, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_id.bus("all"), cloud_id.bus("heads"), ctrl_state[2],
        "id/wire", 1, rng,
    )
    ctrl_src[1] = ir + ctrl_state[1]
    capture[1] = {"imm": imm, "cstate": ctrl_state[2]}

    # ------------------------------------------------------------------ #
    # Stage 2 — RN: rename — map-table CAM + ROB tail allocation.
    # ------------------------------------------------------------------ #
    zero_rn = constant_zero(nl, ctrl_state[2][0], "rn", 2)
    one_rn = nl.add_gate("rn/tie1", GateType.NOT, (zero_rn,), 2)
    rob_tail = _ff_column(
        nl, "rn/tail", TAG_BITS, 2, EndpointKind.CONTROL, x=sx(2, 0.90)
    )
    tail_inc = build_ripple_adder(
        nl, rob_tail, [one_rn] + [zero_rn] * (TAG_BITS - 1), zero_rn,
        prefix="rn/tinc", stage=2, origin=(sx(2, 0.7), 4.0),
    )
    for ff, drv in zip(rob_tail, tail_inc.bus("sum")):
        nl.connect_dff(ff, drv)
    # Map-table CAM: the incoming tag is matched against every mapping
    # entry; the hit reduction feeds the rename-valid flop.
    cam_hits: list[int] = []
    for j in range(_CAM_ENTRIES):
        cmp_j = build_comparator(
            nl, rn_tag, tag_slice(ctrl_state[2], j),
            prefix=f"rn/cam{j}", stage=2,
            origin=(sx(2, 0.3 + 0.05 * j), 4.0),
        )
        cam_hits.append(cmp_j.signal("eq"))
    rn_hit_ff = nl.add_dff(
        "rn/hit_ff", _or_tree(nl, cam_hits, "rn/hit", 2), 2,
        EndpointKind.CONTROL, x=sx(2, 0.97), y=2.0,
    )
    cloud_rn = build_random_cloud(
        nl, ctrl_state[2], cfg.cloud_gates, "rn/cloud", 2,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(2, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_rn.bus("all"), cloud_rn.bus("heads"), ctrl_state[3],
        "rn/wire", 2, rng,
    )
    ctrl_src[2] = list(ctrl_state[2])
    data_src[2] = {"rn_tag": rn_tag}
    capture[2] = {
        "rob_tail": rob_tail,
        "rn_hit": [rn_hit_ff],
        "cstate": ctrl_state[3],
    }

    # ------------------------------------------------------------------ #
    # Stage 3 — IS: wakeup comparators + select chain + operand capture.
    # ------------------------------------------------------------------ #
    cst3 = ctrl_state[3]
    # Wakeup: the broadcast CDB tag is compared against every
    # reservation-station entry tag; any match wakes the entry.
    wake_eqs: list[int] = []
    for j in range(_RS_ENTRIES):
        cmp_j = build_comparator(
            nl, cdb_tag, tag_slice(cst3, j),
            prefix=f"is/wake{j}", stage=3,
            origin=(sx(3, 0.3 + 0.06 * j), 4.0),
        )
        wake_eqs.append(cmp_j.signal("eq"))
    grant = _or_tree(nl, wake_eqs, "is/grant", 3)
    # Select: oldest-first priority steering chain (repeater + mux per
    # entry, the same select-stable steering structure as the redirect
    # cone — a coherently-activatable single-transition chain).
    select = grant
    for j in range(_RS_ENTRIES):
        inv = nl.add_gate(f"is/schain_n{j}", GateType.NOT, (select,), 3)
        select = nl.add_gate(
            f"is/schain_m{j}",
            GateType.MUX2,
            (cst3[j % len(cst3)], inv, inv),
            3,
        )
    select_ff = nl.add_dff(
        "is/select_ff", select, 3, EndpointKind.CONTROL,
        x=sx(3, 0.97), y=2.0,
    )
    # Tomasulo operand capture: each operand comes either from the
    # reservation station's captured value or forwarded off the CDB.
    fwd_a = cst3[1]
    fwd_b = cst3[2]
    for i in range(w):
        cap_a = nl.add_gate(
            f"is/capa{i}", GateType.MUX2, (fwd_a, rs_a[i], cdb_val[i]), 3
        )
        nl.connect_dff(op_a[i], cap_a)
        cap_b = nl.add_gate(
            f"is/capb{i}", GateType.MUX2, (fwd_b, rs_b[i], cdb_val[i]), 3
        )
        nl.connect_dff(op_b[i], cap_b)
    cloud_is = build_random_cloud(
        nl, cst3, cfg.cloud_gates, "is/cloud", 3,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(3, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_is.bus("all"), cloud_is.bus("heads"), ctrl_state[4],
        "is/wire", 3, rng,
    )
    ctrl_src[3] = list(cst3)
    data_src[3] = {"rs_a": rs_a, "rs_b": rs_b}
    capture[3] = {
        "op_a": op_a,
        "op_b": op_b,
        "select": [select_ff],
        "cstate": ctrl_state[4],
    }

    # ------------------------------------------------------------------ #
    # Stage 4 — EX: ALU (adder, logic, shifter, multiplier) + flags.
    # Control-select bit positions match the in-order EX stage so the
    # scheduler's semantic overrides (bits 3..7) transfer unchanged.
    # ------------------------------------------------------------------ #
    cst4 = ctrl_state[4]
    sub_sel = cst4[3]
    op0, op1 = cst4[4], cst4[5]
    alu_sel0, alu_sel1 = cst4[6], cst4[7]
    b_eff = [
        nl.add_gate(f"ex/bsub{i}", GateType.XOR2, (op_b[i], sub_sel), 4)
        for i in range(w)
    ]
    adder = build_ripple_adder(
        nl, op_a, b_eff, sub_sel, prefix="ex/add", stage=4,
        origin=(sx(4, 0.25), 4.0),
    )
    logic = build_logic_unit(
        nl, op_a, op_b, op0, op1, prefix="ex/log", stage=4,
        origin=(sx(4, 0.45), 4.0),
    )
    shifter = build_barrel_shifter(
        nl, op_a, op_b[: cfg.shift_bits], prefix="ex/shf", stage=4,
        origin=(sx(4, 0.6), 4.0),
    )
    mult = build_array_multiplier(
        nl,
        op_a[: cfg.mult_width],
        op_b[: cfg.mult_width],
        prefix="ex/mul",
        stage=4,
        origin=(sx(4, 0.72), 4.0),
    )
    zero_ex = constant_zero(nl, op_a[0], "ex", 4)
    prod = mult.bus("product") + [zero_ex] * (w - cfg.mult_width)
    alu_out: list[int] = []
    for i in range(w):
        m0 = nl.add_gate(
            f"ex/alum0_{i}", GateType.MUX2,
            (alu_sel0, adder.bus("sum")[i], logic.bus("out")[i]), 4,
        )
        m1 = nl.add_gate(
            f"ex/alum1_{i}", GateType.MUX2,
            (alu_sel0, shifter.bus("out")[i], prod[i]), 4,
        )
        alu_out.append(
            nl.add_gate(f"ex/aluout{i}", GateType.MUX2, (alu_sel1, m0, m1), 4)
        )
    for ff, drv in zip(ex_result, alu_out):
        nl.connect_dff(ff, drv)
    zflag = nl.add_gate(
        "ex/zflag", GateType.NOT, (_or_tree(nl, alu_out, "ex/zf", 4),), 4
    )
    nflag = nl.add_gate("ex/nflag", GateType.BUF, (alu_out[-1],), 4)
    cflag = nl.add_gate("ex/cflag", GateType.BUF, (adder.signal("cout"),), 4)
    vflag = _xor_tree(nl, alu_out[:4], "ex/vf", 4)
    for ff, drv in zip(cc, (zflag, nflag, cflag, vflag)):
        nl.connect_dff(ff, drv)
    cloud_ex = build_random_cloud(
        nl, cst4 + cc, cfg.cloud_gates, "ex/cloud", 4,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(4, 0.2), 10.0), extent=(0.5 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_ex.bus("all"), cloud_ex.bus("heads"), ctrl_state[5],
        "ex/wire", 4, rng,
    )
    ctrl_src[4] = list(cst4)
    data_src[4] = {"op_a": op_a, "op_b": op_b, "cc": cc}
    capture[4] = {"ex_result": ex_result, "cc": cc, "cstate": ctrl_state[5]}

    # ------------------------------------------------------------------ #
    # Stage 5 — ME: load alignment + memory-result select.
    # ------------------------------------------------------------------ #
    align = build_barrel_shifter(
        nl, mem_d, ma[:2], prefix="me/align", stage=5,
        origin=(sx(5, 0.3), 4.0),
    )
    ld_sel = ctrl_state[5][0]
    me_mux = [
        nl.add_gate(
            f"me/resmux{i}", GateType.MUX2, (ld_sel, ma[i], align.bus("out")[i]), 5
        )
        for i in range(w)
    ]
    for ff, drv in zip(me_result, me_mux):
        nl.connect_dff(ff, drv)
    cloud_me = build_random_cloud(
        nl, ctrl_state[5], cfg.cloud_gates, "me/cloud", 5,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(5, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_me.bus("all"), cloud_me.bus("heads"), ctrl_state[6],
        "me/wire", 5, rng,
    )
    ctrl_src[5] = list(ctrl_state[5])
    data_src[5] = {"mem_d": mem_d, "ma": ma, "ex_result": ex_result}
    capture[5] = {"me_result": me_result, "cstate": ctrl_state[6]}

    # ------------------------------------------------------------------ #
    # Stage 6 — WB: CDB broadcast — result select + tag match.
    # ------------------------------------------------------------------ #
    wb_sel = ctrl_state[6][0]
    wb_mux = [
        nl.add_gate(
            f"wb/mux{i}", GateType.MUX2, (wb_sel, cdb_val[i], me_result[i]), 6
        )
        for i in range(w)
    ]
    for ff, drv in zip(wb_result, wb_mux):
        nl.connect_dff(ff, drv)
    match_cmp = build_comparator(
        nl, cdb_tag, tag_slice(ctrl_state[6], 1),
        prefix="wb/match", stage=6, origin=(sx(6, 0.6), 4.0),
    )
    match_ff = nl.add_dff(
        "wb/match_ff", match_cmp.signal("eq"), 6, EndpointKind.CONTROL,
        x=sx(6, 0.97), y=2.0,
    )
    cloud_wb = build_random_cloud(
        nl, ctrl_state[6], cfg.cloud_gates, "wb/cloud", 6,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(6, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_wb.bus("all"), cloud_wb.bus("heads"), ctrl_state[7],
        "wb/wire", 6, rng,
    )
    ctrl_src[6] = list(ctrl_state[6])
    data_src[6] = {"cdb_val": cdb_val, "cdb_tag": cdb_tag}
    capture[6] = {
        "wb_result": wb_result,
        "cdb_match": [match_ff],
        "cstate": ctrl_state[7],
    }

    # ------------------------------------------------------------------ #
    # Stage 7 — CM: in-order retirement — head pointer + commit select.
    # ------------------------------------------------------------------ #
    zero_cm = constant_zero(nl, ctrl_state[7][0], "cm", 7)
    one_cm = nl.add_gate("cm/tie1", GateType.NOT, (zero_cm,), 7)
    rob_head = _ff_column(
        nl, "cm/head", TAG_BITS, 7, EndpointKind.CONTROL, x=sx(7, 0.90)
    )
    head_inc = build_ripple_adder(
        nl, rob_head, [one_cm] + [zero_cm] * (TAG_BITS - 1), zero_cm,
        prefix="cm/hinc", stage=7, origin=(sx(7, 0.6), 4.0),
    )
    for ff, drv in zip(rob_head, head_inc.bus("sum")):
        nl.connect_dff(ff, drv)
    empty_cmp = build_comparator(
        nl, rob_head, rob_tail, prefix="cm/empty", stage=7,
        origin=(sx(7, 0.7), 4.0),
    )
    empty_ff = nl.add_dff(
        "cm/empty_ff", empty_cmp.signal("eq"), 7, EndpointKind.CONTROL,
        x=sx(7, 0.97), y=2.0,
    )
    cm_sel = ctrl_state[7][0]
    retire_mux = [
        nl.add_gate(
            f"cm/mux{i}", GateType.MUX2, (cm_sel, cm_val[i], wb_result[i]), 7
        )
        for i in range(w)
    ]
    retire = _ff_column(nl, "cm/ret", w, 7, EndpointKind.DATA, x=sx(7, 0.92))
    for ff, drv in zip(retire, retire_mux):
        nl.connect_dff(ff, drv)
    commit = _ff_column(
        nl, "cm/commit", cfg.ctrl_regs // 2, 7, EndpointKind.CONTROL,
        x=sx(7, 0.96),
    )
    cloud_cm = build_random_cloud(
        nl, ctrl_state[7], cfg.cloud_gates, "cm/cloud", 7,
        depth_bias=cfg.depth_bias, seed=int(rng.integers(2**31)),
        origin=(sx(7, 0.2), 10.0), extent=(0.6 * pitch, 80.0),
    )
    _connect_cloud_to_ffs(
        nl, cloud_cm.bus("all"), cloud_cm.bus("heads"), commit, "cm/wire", 7, rng
    )
    ctrl_src[7] = list(ctrl_state[7])
    data_src[7] = {"cm_val": cm_val}
    capture[7] = {"retire": retire, "empty": [empty_ff], "commit": commit}

    # ------------------------------------------------------------------ #
    # Plain register transfers: PC <- incremented PC, memory address and
    # CDB value <- ALU result, CDB tag <- allocated ROB tag, commit value
    # <- broadcast result, fetch control state <- fetch cloud.
    # ------------------------------------------------------------------ #
    for ff, drv in zip(pc, pc_next):
        nl.connect_dff(ff, drv)
    for ff, drv in zip(ma, ex_result):
        nl.connect_dff(ff, drv)
    for ff, drv in zip(cdb_val, ex_result):
        nl.connect_dff(ff, drv)
    for ff, drv in zip(cdb_tag, rob_tail):
        nl.connect_dff(ff, drv)
    for ff, drv in zip(cm_val, wb_result):
        nl.connect_dff(ff, drv)
    cloud_if_all = cloud_if.bus("all")
    for i, ff in enumerate(ctrl_state[0]):
        nl.connect_dff(ff, cloud_if_all[int(rng.integers(len(cloud_if_all)))])

    # ------------------------------------------------------------------ #
    # Tie off loose combinational outputs into per-stage observation
    # registers so no logic dangles (unused carry-outs, cloud spillover).
    # ------------------------------------------------------------------ #
    loose_by_stage: dict[int, list[int]] = {}
    for g in list(nl.gates):
        if g.is_combinational and nl.fanout_count(g.gid) == 0:
            loose_by_stage.setdefault(g.stage, []).append(g.gid)
    for s, loose in sorted(loose_by_stage.items()):
        head = _xor_tree(nl, loose, f"{OOO_STAGE_NAMES[s].lower()}/tieoff", s)
        nl.add_dff(
            f"{OOO_STAGE_NAMES[s].lower()}/tieoff_ff",
            head,
            s,
            EndpointKind.DATA,
            x=sx(s, 0.99),
            y=2.0,
        )

    # Placement sweep for glue logic created without coordinates.
    for g in nl.gates:
        if g.is_combinational and g.x == 0.0 and g.y == 0.0:
            g.x = sx(g.stage, 0.15 + 0.7 * float(rng.random()))
            g.y = 4.0 + 90.0 * float(rng.random())

    nl.validate()
    return PipelineNetlist(
        netlist=nl,
        config=cfg,
        ctrl_src=ctrl_src,
        data_src=data_src,
        capture=capture,
        stage_names=OOO_STAGE_NAMES,
    )
