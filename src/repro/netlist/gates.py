"""Gate primitives for the netlist graph.

The netlist model follows Section 3 of the paper: vertices are gates, edges
are nets, and flip-flops / I-O ports are *endpoints*.  Endpoints are further
split into **control** endpoints (instruction fetch/decode/steer state) and
**data** endpoints (operands, results, condition codes, addresses) as in
Section 4, because the two sets are characterized differently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["GateType", "EndpointKind", "Gate", "evaluate_gate", "GATE_ARITY"]


class GateType(enum.Enum):
    """Supported cell types.

    ``INPUT`` models a primary input or pseudo-input port, ``DFF`` a
    D-flip-flop.  Both are endpoints; everything else is combinational.
    """

    INPUT = "input"
    DFF = "dff"
    BUF = "buf"
    NOT = "not"
    AND2 = "and2"
    OR2 = "or2"
    NAND2 = "nand2"
    NOR2 = "nor2"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    MUX2 = "mux2"  # inputs: (select, a, b) -> b if select else a
    MAJ3 = "maj3"  # majority of three (full-adder carry)

    @property
    def is_endpoint(self) -> bool:
        return self in (GateType.INPUT, GateType.DFF)

    @property
    def is_combinational(self) -> bool:
        return not self.is_endpoint


#: Number of input pins required by each gate type.
GATE_ARITY: dict[GateType, int] = {
    GateType.INPUT: 0,
    GateType.DFF: 1,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND2: 2,
    GateType.OR2: 2,
    GateType.NAND2: 2,
    GateType.NOR2: 2,
    GateType.XOR2: 2,
    GateType.XNOR2: 2,
    GateType.MUX2: 3,
    GateType.MAJ3: 3,
}


class EndpointKind(enum.Enum):
    """Classification of endpoints per Section 4 of the paper."""

    CONTROL = "control"
    DATA = "data"


@dataclass(slots=True)
class Gate:
    """A single gate instance in the netlist.

    Attributes:
        gid: Dense integer id, assigned by the owning :class:`Netlist`.
        name: Human-readable hierarchical name (unique per netlist).
        gtype: The cell type.
        inputs: Ids of the gates driving this gate's input pins, in pin
            order.  For a ``DFF`` this is the single driver of its D pin;
            the flip-flop's Q output is the value the gate itself exposes.
        stage: Pipeline stage index the gate belongs to.
        endpoint_kind: ``CONTROL``/``DATA`` for endpoints, ``None`` for
            combinational gates.
        x, y: Placement coordinates (micrometres) used by the spatial
            process-variation model.
    """

    gid: int
    name: str
    gtype: GateType
    inputs: tuple[int, ...] = ()
    stage: int = 0
    endpoint_kind: EndpointKind | None = None
    x: float = 0.0
    y: float = 0.0

    @property
    def is_endpoint(self) -> bool:
        return self.gtype.is_endpoint

    @property
    def is_combinational(self) -> bool:
        return self.gtype.is_combinational

    def __post_init__(self) -> None:
        arity = GATE_ARITY[self.gtype]
        if len(self.inputs) != arity:
            raise ValueError(
                f"gate {self.name!r} of type {self.gtype.value} needs "
                f"{arity} inputs, got {len(self.inputs)}"
            )
        if self.is_endpoint and self.endpoint_kind is None:
            raise ValueError(f"endpoint gate {self.name!r} needs an endpoint_kind")
        if self.is_combinational and self.endpoint_kind is not None:
            raise ValueError(f"combinational gate {self.name!r} cannot be an endpoint")


def evaluate_gate(gtype: GateType, operands: list[np.ndarray]) -> np.ndarray:
    """Evaluate a combinational gate on vectorized boolean operands.

    Each operand is a boolean array (arbitrary, broadcast-compatible shape —
    typically one lane per simulated clock cycle).  Returns the output as a
    boolean array of the same shape.
    """
    if gtype == GateType.BUF:
        return operands[0].copy()
    if gtype == GateType.NOT:
        return ~operands[0]
    if gtype == GateType.AND2:
        return operands[0] & operands[1]
    if gtype == GateType.OR2:
        return operands[0] | operands[1]
    if gtype == GateType.NAND2:
        return ~(operands[0] & operands[1])
    if gtype == GateType.NOR2:
        return ~(operands[0] | operands[1])
    if gtype == GateType.XOR2:
        return operands[0] ^ operands[1]
    if gtype == GateType.XNOR2:
        return ~(operands[0] ^ operands[1])
    if gtype == GateType.MUX2:
        sel, a, b = operands
        return np.where(sel, b, a)
    if gtype == GateType.MAJ3:
        a, b, c = operands
        return (a & b) | (a & c) | (b & c)
    raise ValueError(f"cannot evaluate non-combinational gate type {gtype}")
