"""Timing-path enumeration (Definition 3.1).

A *path* is an ordered set of gates whose first gate is the only endpoint in
the set, each gate is driven by the previous one, and the last gate drives an
endpoint (the sink flip-flop's D pin).  ``P(e)`` — the set of all paths
ending in endpoint ``e`` — is exponential in general, so the enumerator
yields the K most critical (longest nominal delay) paths per endpoint using
best-first path peeling with an exact arrival-time heuristic, the standard
approach in timing analysis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

__all__ = ["Path", "PathEnumerator"]


@dataclass(frozen=True, slots=True)
class Path:
    """A timing path through the combinational fabric.

    Attributes:
        gates: Gate ids in signal-flow order.  The first gate is the source
            endpoint (its Q output launches the signal); the rest are
            combinational.  ``G(p)`` in the paper's notation.
        sink: Id of the endpoint whose D pin the last gate drives.
        delay: Nominal path delay in picoseconds (source clock-to-Q plus
            combinational cell delays; the sink's setup time is *not*
            included — slack computations add it separately).
    """

    gates: tuple[int, ...]
    sink: int
    delay: float

    @property
    def source(self) -> int:
        return self.gates[0]

    def __len__(self) -> int:
        return len(self.gates)

    def shares_gates_with(self, other: "Path") -> bool:
        """True if the two paths have any gate in common."""
        return bool(set(self.gates) & set(other.gates))


class PathEnumerator:
    """Enumerates the most critical paths ending at each endpoint.

    Args:
        netlist: The netlist to analyze.
        delays: Per-gate nominal delays (ps), e.g. from
            :meth:`Netlist.nominal_delays`.
    """

    def __init__(self, netlist: Netlist, delays: np.ndarray) -> None:
        if len(delays) != len(netlist):
            raise ValueError(
                f"delays length {len(delays)} does not match netlist size "
                f"{len(netlist)}"
            )
        self.netlist = netlist
        self.delays = np.asarray(delays, dtype=float)
        self._arrival = self._compute_arrivals()

    def _compute_arrivals(self) -> np.ndarray:
        """Longest source-to-output delay for every gate (incl. own delay)."""
        n = len(self.netlist)
        arrival = np.full(n, -np.inf)
        for g in self.netlist.gates:
            if g.is_endpoint:
                arrival[g.gid] = self.delays[g.gid]
        for gid in self.netlist.topological_order():
            g = self.netlist.gate(gid)
            best = max(arrival[i] for i in g.inputs)
            arrival[gid] = best + self.delays[gid]
        return arrival

    @property
    def arrivals(self) -> np.ndarray:
        """Per-gate worst arrival times (ps) at gate outputs."""
        return self._arrival

    def critical_paths(self, endpoint: int, k: int = 16) -> list[Path]:
        """Return up to ``k`` longest paths ending at ``endpoint``.

        Paths are returned in non-increasing nominal-delay order, i.e. the
        order the paper's ``CP`` function consumes them in Algorithm 1.
        ``endpoint`` must be a DFF (input ports have no D pin to capture).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        sink = self.netlist.gate(endpoint)
        if sink.gtype != GateType.DFF:
            raise ValueError(f"gate {sink.name!r} is not a capture flip-flop")
        driver = sink.inputs[0]
        results: list[Path] = []
        # Heap entries: (-upper_bound_delay, counter, head, partial_tuple,
        # cost_of_partial).  ``partial_tuple`` holds gate ids from ``head``
        # to the sink driver in signal-flow order.
        counter = 0
        start_bound = self._arrival[driver]
        heap = [(-start_bound, counter, driver, (driver,), self.delays[driver])]
        while heap and len(results) < k:
            neg_bound, _, head, partial, cost = heapq.heappop(heap)
            head_gate = self.netlist.gate(head)
            if head_gate.is_endpoint:
                results.append(Path(gates=partial, sink=endpoint, delay=-neg_bound))
                continue
            # A gate may use the same driver on two pins (e.g. AND(x, x));
            # the gate *sequence* is identical either way, so expand each
            # distinct driver once (a path is a set of gates, Def. 3.1).
            for inp in dict.fromkeys(head_gate.inputs):
                counter += 1
                new_cost = cost + self.delays[inp]
                bound = new_cost + (self._arrival[inp] - self.delays[inp])
                heapq.heappush(
                    heap, (-bound, counter, inp, (inp,) + partial, new_cost)
                )
        return results

    def all_paths(self, endpoint: int, limit: int = 100000) -> list[Path]:
        """Exhaustively enumerate paths to ``endpoint`` (testing helper).

        Raises ``ValueError`` if more than ``limit`` paths exist, protecting
        against exponential blowup on large fabrics.
        """
        paths = self.critical_paths(endpoint, k=limit)
        if len(paths) == limit:
            more = self.critical_paths(endpoint, k=limit + 1)
            if len(more) > limit:
                raise ValueError(f"endpoint has more than {limit} paths")
        return paths

    def worst_path(self, endpoint: int) -> Path:
        """The single most critical path ending at ``endpoint``."""
        return self.critical_paths(endpoint, k=1)[0]

    def max_arrival(self, endpoint: int) -> float:
        """Worst arrival time at ``endpoint``'s D pin (ps)."""
        sink = self.netlist.gate(endpoint)
        if sink.gtype != GateType.DFF:
            raise ValueError(f"gate {sink.name!r} is not a capture flip-flop")
        return float(self._arrival[sink.inputs[0]])
