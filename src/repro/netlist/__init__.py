"""Gate-level netlist substrate.

Provides the netlist graph the paper's dynamic timing analysis operates on
(Section 3): gates and nets, endpoint flip-flops split into *control* and
*data* sets, a Liberty-like timing library, timing-path enumeration
(Definition 3.1), and a synthetic pipeline netlist generator standing in for
the synthesized LEON3 integer unit.
"""

from repro.netlist.gates import Gate, GateType, EndpointKind, evaluate_gate
from repro.netlist.library import CellTiming, TimingLibrary
from repro.netlist.netlist import Netlist
from repro.netlist.paths import Path, PathEnumerator
from repro.netlist.builders import (
    build_ripple_adder,
    build_logic_unit,
    build_barrel_shifter,
    build_array_multiplier,
    build_random_cloud,
    build_comparator,
)
from repro.netlist.generator import PipelineConfig, PipelineNetlist, generate_pipeline

__all__ = [
    "Gate",
    "GateType",
    "EndpointKind",
    "evaluate_gate",
    "CellTiming",
    "TimingLibrary",
    "Netlist",
    "Path",
    "PathEnumerator",
    "build_ripple_adder",
    "build_logic_unit",
    "build_barrel_shifter",
    "build_array_multiplier",
    "build_random_cloud",
    "build_comparator",
    "PipelineConfig",
    "PipelineNetlist",
    "generate_pipeline",
]
