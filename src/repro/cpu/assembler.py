"""A small two-pass assembler for the repro ISA.

Syntax (one instruction per line; ``;`` or ``#`` start comments)::

    loop:                     ; labels end with a colon
        li    r1, 10
        add   r2, r2, r1      ; register-register
        addcc r2, r2, 1       ; register-immediate, sets condition codes
        cmp   r2, r3          ; alias of subcc r0, r2, r3
        ld    r4, [r2+4]
        st    r4, [r2+8]
        bne   loop
        halt

Aliases: ``mov rd, rs`` (= ``add rd, rs, 0``), ``cmp`` (= ``subcc`` to
``r0``), ``inc``/``dec rd`` and ``clr rd``.
"""

from __future__ import annotations

import re

from repro.cpu.isa import BRANCH_OPS, Instruction, NUM_REGS, Opcode
from repro.cpu.program import Program

__all__ = ["assemble", "AssemblyError"]


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):\s*(.*)$")
_MEM_RE = re.compile(
    r"^\[\s*(r\d+)\s*(?:([+-])\s*(0[xX][0-9a-fA-F]+|\d+))?\s*\]$"
)

_THREE_OP = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "sll": Opcode.SLL,
    "srl": Opcode.SRL,
    "sra": Opcode.SRA,
    "mul": Opcode.MUL,
}


def _reg(tok: str, line_no: int) -> int:
    if not re.fullmatch(r"r\d+", tok):
        raise AssemblyError(f"line {line_no}: expected register, got {tok!r}")
    n = int(tok[1:])
    if not 0 <= n < NUM_REGS:
        raise AssemblyError(f"line {line_no}: register out of range: {tok}")
    return n


def _imm(tok: str, line_no: int) -> int:
    try:
        return int(tok, 0)
    except ValueError as exc:
        raise AssemblyError(
            f"line {line_no}: expected immediate, got {tok!r}"
        ) from exc


def _split_operands(rest: str) -> list[str]:
    return [t.strip() for t in rest.split(",")] if rest.strip() else []


def _parse_line(
    mnemonic: str, ops: list[str], line_no: int
) -> Instruction:
    set_cc = False
    if mnemonic.endswith("cc") and mnemonic[:-2] in _THREE_OP:
        set_cc = True
        mnemonic = mnemonic[:-2]

    if mnemonic in _THREE_OP:
        if len(ops) != 3:
            raise AssemblyError(
                f"line {line_no}: {mnemonic} needs 3 operands"
            )
        rd = _reg(ops[0], line_no)
        rs1 = _reg(ops[1], line_no)
        if ops[2].startswith("r") and re.fullmatch(r"r\d+", ops[2]):
            return Instruction(
                _THREE_OP[mnemonic], rd=rd, rs1=rs1,
                rs2=_reg(ops[2], line_no), set_cc=set_cc,
            )
        return Instruction(
            _THREE_OP[mnemonic], rd=rd, rs1=rs1,
            imm=_imm(ops[2], line_no), set_cc=set_cc,
        )

    if mnemonic == "cmp":
        if len(ops) != 2:
            raise AssemblyError(f"line {line_no}: cmp needs 2 operands")
        rs1 = _reg(ops[0], line_no)
        if re.fullmatch(r"r\d+", ops[1]):
            return Instruction(
                Opcode.SUB, rd=0, rs1=rs1, rs2=_reg(ops[1], line_no),
                set_cc=True,
            )
        return Instruction(
            Opcode.SUB, rd=0, rs1=rs1, imm=_imm(ops[1], line_no), set_cc=True
        )

    if mnemonic == "mov":
        if len(ops) != 2:
            raise AssemblyError(f"line {line_no}: mov needs 2 operands")
        return Instruction(
            Opcode.ADD, rd=_reg(ops[0], line_no), rs1=_reg(ops[1], line_no),
            imm=0,
        )

    if mnemonic == "clr":
        return Instruction(Opcode.LI, rd=_reg(ops[0], line_no), imm=0)

    if mnemonic in ("inc", "dec"):
        rd = _reg(ops[0], line_no)
        op = Opcode.ADD if mnemonic == "inc" else Opcode.SUB
        return Instruction(op, rd=rd, rs1=rd, imm=1)

    if mnemonic == "li":
        if len(ops) != 2:
            raise AssemblyError(f"line {line_no}: li needs 2 operands")
        return Instruction(
            Opcode.LI, rd=_reg(ops[0], line_no), imm=_imm(ops[1], line_no)
        )

    if mnemonic in ("ld", "st"):
        if len(ops) != 2:
            raise AssemblyError(f"line {line_no}: {mnemonic} needs 2 operands")
        rd = _reg(ops[0], line_no)
        m = _MEM_RE.match(ops[1])
        if not m:
            raise AssemblyError(
                f"line {line_no}: bad memory operand {ops[1]!r}"
            )
        rs1 = _reg(m.group(1), line_no)
        offset = int(m.group(3) or "0", 0)
        if m.group(2) == "-":
            offset = -offset
        op = Opcode.LD if mnemonic == "ld" else Opcode.ST
        return Instruction(op, rd=rd, rs1=rs1, imm=offset)

    branch = {o.value: o for o in BRANCH_OPS}
    if mnemonic in branch:
        if len(ops) != 1:
            raise AssemblyError(f"line {line_no}: {mnemonic} needs a target")
        return Instruction(branch[mnemonic], target=ops[0])

    if mnemonic == "call":
        if len(ops) != 1:
            raise AssemblyError(f"line {line_no}: call needs a target")
        return Instruction(Opcode.CALL, target=ops[0])

    if mnemonic == "ret":
        return Instruction(Opcode.RET)
    if mnemonic == "halt":
        return Instruction(Opcode.HALT)
    if mnemonic == "nop":
        return Instruction(Opcode.NOP)

    raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        while line:
            m = _LABEL_RE.match(line)
            if m:
                label = m.group(1)
                if label in labels:
                    raise AssemblyError(
                        f"line {line_no}: duplicate label {label!r}"
                    )
                labels[label] = len(instructions)
                line = m.group(2).strip()
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            instructions.append(
                _parse_line(mnemonic, _split_operands(rest), line_no)
            )
            line = ""
    if not instructions:
        raise AssemblyError("no instructions in source")
    try:
        return Program(instructions, labels, name=name)
    except ValueError as exc:
        raise AssemblyError(str(exc)) from exc
