"""Pipeline occupancy modelling for characterization windows.

The control-network characterizer (Section 4) executes short instruction
sequences — a basic block plus the tail of a predecessor — through the
in-order pipeline and needs to know, for every cycle, which instruction
occupies which stage and with which operand values.  This module converts a
window of executed instructions (:class:`~repro.cpu.interpreter.StepRecord`
values, or ``None`` for bubbles) into the per-cycle
:class:`~repro.logicsim.stimulus.StageOccupancy` schedules consumed by the
stimulus encoder.

The model is ideal single-issue in-order flow: one instruction enters the
pipeline per cycle, no stalls (LEON3's integer pipeline is close to
stall-free on register workloads; memory stalls would only stretch windows,
not change which paths activate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.interpreter import StepRecord
from repro.cpu.isa import Opcode, OpClass, WORD_MASK
from repro.cpu.program import Program
from repro.logicsim.stimulus import PipelineCycle, StageOccupancy

__all__ = ["InstructionWindow", "PipelineScheduler"]


@dataclass(slots=True)
class InstructionWindow:
    """A sequence of pipeline slots.

    Each slot is a :class:`StepRecord` (an executed dynamic instruction) or
    ``None`` (a bubble — flushed/idle pipeline slot).
    """

    slots: list[StepRecord | None]

    def __len__(self) -> int:
        return len(self.slots)

    def with_bubble_before(self, k: int) -> "InstructionWindow":
        """Copy with a bubble inserted before slot ``k``.

        This is the paper's error-correction emulation: computing the
        conditional error probability p^e of instruction ``k`` given the
        previous instruction erred, by mimicking the flushed pipeline state
        the correction mechanism leaves behind.
        """
        if not 0 <= k < len(self.slots):
            raise IndexError(f"slot {k} out of range")
        return InstructionWindow(self.slots[:k] + [None] + self.slots[k:])


#: ALU functional-select encodings: (alu_sel1, alu_sel0) routes the EX
#: result mux to the adder / logic unit / barrel shifter / multiplier.
_ALU_SELECT = {
    OpClass.ADDER: (False, False),
    OpClass.LOAD: (False, False),  # address adder
    OpClass.STORE: (False, False),
    OpClass.LOGIC: (False, True),
    OpClass.SHIFT: (True, False),
    OpClass.MULT: (True, True),
}
_LOGIC_SELECT = {  # (op1, op0) of the logic unit
    Opcode.AND: (False, False),
    Opcode.OR: (False, True),
    Opcode.XOR: (True, False),
}


def _ex_overrides(ins) -> dict[int, bool]:
    """Semantic EX-stage control bits derived from the opcode."""
    sel1, sel0 = _ALU_SELECT.get(ins.op_class, (False, False))
    op1, op0 = _LOGIC_SELECT.get(ins.op, (False, False))
    return {
        3: ins.op == Opcode.SUB,  # subtract enable (operand complement)
        4: op0,
        5: op1,
        6: sel0,
        7: sel1,
    }


def _flags_proxy(record: StepRecord | None) -> int:
    """Approximate condition-code value from a producing record."""
    if record is None:
        return 0
    r = record.result
    z = int(r == 0)
    n = int(bool(r & 0x8000))
    return z | (n << 1)


class PipelineScheduler:
    """Maps instruction windows onto per-cycle stage occupancy.

    Args:
        program: The program the window's records refer to.
        num_stages: Pipeline depth (6 for the modelled LEON3 integer unit).
        model_stalls: Insert a load-use bubble when an instruction reads
            the destination of the immediately preceding load (LEON3's
            one-cycle load-delay interlock).  Off by default: the ideal
            flow is the calibration reference; enable for hazard studies.
    """

    def __init__(
        self,
        program: Program,
        num_stages: int = 6,
        model_stalls: bool = False,
    ) -> None:
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        self.program = program
        self.num_stages = num_stages
        self.model_stalls = model_stalls

    def _load_use_hazard(
        self, prev: StepRecord | None, current: StepRecord
    ) -> bool:
        """True when ``current`` consumes the previous load's result."""
        if prev is None:
            return False
        prev_ins = self.program[prev.index]
        if prev_ins.op != Opcode.LD or prev_ins.rd == 0:
            return False
        ins = self.program[current.index]
        sources = {ins.rs1}
        if ins.rs2 is not None:
            sources.add(ins.rs2)
        if ins.op == Opcode.ST:
            sources.add(ins.rd)  # store data register
        return prev_ins.rd in sources

    def expand_stalls(self, window: InstructionWindow) -> InstructionWindow:
        """Insert load-use bubbles into a window (used when
        ``model_stalls`` is enabled)."""
        slots: list[StepRecord | None] = []
        prev: StepRecord | None = None
        for slot in window.slots:
            if (
                slot is not None
                and prev is not None
                and self._load_use_hazard(prev, slot)
            ):
                slots.append(None)
            slots.append(slot)
            if slot is not None:
                prev = slot
        return InstructionWindow(slots)

    def _occupancy(
        self,
        stage: int,
        record: StepRecord | None,
        prev: StepRecord | None,
    ) -> StageOccupancy:
        if record is None:
            return StageOccupancy()
        ins = self.program[record.index]
        token = self.program.token_of(record.index)
        op_token = self.program.op_token_of(record.index)
        class_token = self.program.class_token_of(record.index)
        a, b, result = record.a, record.b, record.result
        overrides: dict[int, bool] = {}
        if stage == 3:
            overrides = _ex_overrides(ins)
        elif stage in (4, 5):
            overrides = {0: ins.op == Opcode.LD}
        if stage == 0:
            data = {
                "pc": record.index & WORD_MASK,
                # The next-PC register holds the prediction that led here.
                "pc_next": record.index & WORD_MASK,
                "fetch_imm": ins.imm & 0xFF,
            }
        elif stage == 2:
            data = {
                "rf_a": a & WORD_MASK,
                "rf_b": b & WORD_MASK,
                "imm": ins.imm & WORD_MASK,
            }
        elif stage == 3:
            data = {
                "op_a": a & WORD_MASK,
                "op_b": b & WORD_MASK,
                "cc": _flags_proxy(prev),
            }
        elif stage == 4:
            if ins.op in (Opcode.LD, Opcode.ST):
                address = (a + ins.imm) & WORD_MASK
                loaded = result & WORD_MASK if ins.op == Opcode.LD else 0
            else:
                address = result & WORD_MASK
                loaded = 0
            data = {
                "ma": address,
                "mem_d": loaded,
                "ex_result": result & WORD_MASK,
            }
        elif stage == 5:
            data = {
                "wb_src": result & WORD_MASK,
                "me_result": result & WORD_MASK,
            }
        else:
            data = {}
        return StageOccupancy(
            token=token,
            op_token=op_token,
            class_token=class_token,
            data=data,
            ctrl_overrides=overrides,
        )

    def schedule(self, window: InstructionWindow) -> list[PipelineCycle]:
        """Per-cycle pipeline occupancy for a window.

        Slot ``i`` enters stage 0 at cycle ``i`` and stage ``s`` at cycle
        ``i + s``; the schedule spans ``len(window) + num_stages - 1``
        cycles so the last slot drains fully.  With ``model_stalls`` the
        window is first expanded with load-use bubbles.
        """
        if self.model_stalls:
            window = self.expand_stalls(window)
        slots = window.slots
        n_cycles = len(slots) + self.num_stages - 1
        cycles: list[PipelineCycle] = []
        for c in range(n_cycles):
            cycle: PipelineCycle = []
            for s in range(self.num_stages):
                i = c - s
                record = slots[i] if 0 <= i < len(slots) else None
                prev = slots[i - 1] if 1 <= i <= len(slots) else None
                cycle.append(self._occupancy(s, record, prev))
            cycles.append(cycle)
        return cycles

    def entry_cycle(self, slot_index: int) -> int:
        """Cycle at which slot ``slot_index`` enters stage 0."""
        return slot_index

    def entries(
        self, window: InstructionWindow, slot_indices: list[int]
    ) -> list[int]:
        """Analyzer entry specs for the given slots.

        The in-order trajectory is fully described by the entry cycle
        (stage ``s`` at ``entry + s``), so the specs are plain integers;
        out-of-order schedulers return explicit (stage, cycle) pair
        lists from the same method.
        """
        return [self.entry_cycle(i) for i in slot_indices]
