"""Program container: instructions, labels, and static-instruction tokens."""

from __future__ import annotations

from repro.cpu.isa import BRANCH_OPS, Instruction, Opcode
from repro.logicsim.stimulus import mix64

__all__ = ["Program"]


class Program:
    """An assembled program.

    Args:
        instructions: Static instructions in address order.
        labels: Mapping from label name to instruction index.
        name: Program name (informational).
    """

    def __init__(
        self,
        instructions: list[Instruction],
        labels: dict[str, int] | None = None,
        name: str = "program",
    ) -> None:
        if not instructions:
            raise ValueError("program must contain at least one instruction")
        self.name = name
        self.instructions = list(instructions)
        self.labels = dict(labels or {})
        for label, idx in self.labels.items():
            if not 0 <= idx < len(self.instructions):
                raise ValueError(
                    f"label {label!r} points outside the program ({idx})"
                )
        self._targets = self._resolve_targets()
        self._tokens = [
            self._token(i, ins) for i, ins in enumerate(self.instructions)
        ]
        self._op_tokens = [
            self._coarse_token(ins.op.value, int(ins.set_cc))
            for ins in self.instructions
        ]
        self._class_tokens = [
            self._coarse_token(ins.op_class.value, 0)
            for ins in self.instructions
        ]

    def _resolve_targets(self) -> list[int | None]:
        targets: list[int | None] = []
        for i, ins in enumerate(self.instructions):
            if ins.target is None:
                targets.append(None)
            else:
                if ins.target not in self.labels:
                    raise ValueError(
                        f"instruction {i} references undefined label "
                        f"{ins.target!r}"
                    )
                targets.append(self.labels[ins.target])
        return targets

    @staticmethod
    def _token(index: int, ins: Instruction) -> int:
        """Stable identity token of a static instruction.

        Drives the control-network stimulus encoding: the same static
        instruction always produces the same control-bit pattern.  Built
        from :func:`mix64` only — Python's ``hash`` is randomized per
        process and must not leak into the encoding.
        """
        op_code = int.from_bytes(ins.op.value.encode()[:8], "little")
        h = mix64(index + 1)
        h = mix64(h ^ mix64(op_code))
        h = mix64(h ^ (ins.rd << 1) ^ (ins.rs1 << 5))
        h = mix64(h ^ ((ins.rs2 or 0) << 9) ^ (ins.imm & 0xFFFF) << 13)
        return h or 1  # token 0 is reserved for pipeline bubbles

    @staticmethod
    def _coarse_token(label: str, extra: int) -> int:
        """Stable token for an opcode or opcode-class label."""
        word = int.from_bytes(label.encode()[:8], "little")
        return mix64(mix64(word) ^ (extra + 1)) or 1

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def target_of(self, index: int) -> int | None:
        """Resolved branch/call target index of instruction ``index``."""
        return self._targets[index]

    def token_of(self, index: int) -> int:
        """Identity token of static instruction ``index``."""
        return self._tokens[index]

    def op_token_of(self, index: int) -> int:
        """Opcode-level token (shared by same-opcode instructions)."""
        return self._op_tokens[index]

    def class_token_of(self, index: int) -> int:
        """Opcode-class-level token (coarsest control identity)."""
        return self._class_tokens[index]

    def successors_of(self, index: int) -> list[int]:
        """Possible next instruction indices (static control flow)."""
        ins = self.instructions[index]
        if ins.op == Opcode.HALT:
            return []
        fallthrough = index + 1
        succ: list[int] = []
        if ins.op == Opcode.BA:
            succ.append(self._targets[index])
        elif ins.op in BRANCH_OPS:
            succ.append(self._targets[index])
            if fallthrough < len(self.instructions):
                succ.append(fallthrough)
        elif ins.op == Opcode.CALL:
            succ.append(self._targets[index])
        elif ins.op == Opcode.RET:
            # Return targets are data-dependent; the CFG layer treats the
            # instructions after every call of the program as candidates.
            succ.extend(
                i + 1
                for i, other in enumerate(self.instructions)
                if other.op == Opcode.CALL and i + 1 < len(self.instructions)
            )
        else:
            if fallthrough < len(self.instructions):
                succ.append(fallthrough)
        return [s for s in succ if s is not None]

    def listing(self) -> str:
        """Human-readable disassembly with labels."""
        by_index: dict[int, list[str]] = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        lines = []
        for i, ins in enumerate(self.instructions):
            for label in sorted(by_index.get(i, [])):
                lines.append(f"{label}:")
            lines.append(f"    {ins}")
        return "\n".join(lines)
