"""Error-detection/correction schemes and their dynamic effects.

Two effects matter to the framework (Sections 4.1 and 6.1):

1. *Conditioning* — after a correction event, the next instruction
   transitions the datapath from the state the correction mechanism left
   behind, not from the errant instruction's state, activating different
   timing paths.  Each scheme therefore emulates the corrected pipeline
   state for computing the conditional error probability p^e (the paper's
   nop-insertion instrumentation).

2. *Performance* — every corrected error costs recovery cycles, feeding the
   error-rate-to-performance mapping of Section 6.3.
"""

from __future__ import annotations

from repro._util import check_nonnegative, check_positive
from repro.cpu.interpreter import StepRecord
from repro.cpu.pipeline import InstructionWindow

__all__ = [
    "CorrectionScheme",
    "ReplayHalfFrequency",
    "PipelineFlush",
    "NoCorrection",
]


class CorrectionScheme:
    """Base class for error-correction mechanisms."""

    #: Human-readable scheme name.
    name: str = "abstract"

    def penalty_cycles(self, pipeline_depth: int) -> float:
        """Average clock cycles lost per corrected timing error."""
        raise NotImplementedError

    def emulate(self, window: InstructionWindow, k: int) -> InstructionWindow:
        """Pipeline window seen by slot ``k`` when its predecessor erred."""
        raise NotImplementedError

    def guarantees_correctness(self) -> bool:
        """Whether detection+correction guarantee architectural correctness."""
        return True


class ReplayHalfFrequency(CorrectionScheme):
    """Instruction replay at half frequency (Bowman et al. [4], Section 6.1).

    On error detection the clock is halved, the pipeline is flushed, and the
    errant instruction is reissued; the replayed instruction cannot err at
    half frequency.  For a 6-stage pipeline the paper charges 24 cycles per
    event: a flush-and-refill of the pipeline (2 x depth at the halved
    clock, counted in full-frequency cycles).

    The conditioning emulation inserts a bubble before the instruction: the
    replayed predecessor commits architecturally, but the instruction sees a
    freshly refilled (nop-like) pipeline.
    """

    name = "replay-half-frequency"

    def __init__(self, cycles_per_stage: float = 4.0) -> None:
        check_positive("cycles_per_stage", cycles_per_stage)
        self.cycles_per_stage = cycles_per_stage

    def penalty_cycles(self, pipeline_depth: int) -> float:
        check_positive("pipeline_depth", pipeline_depth)
        return self.cycles_per_stage * pipeline_depth

    def emulate(self, window: InstructionWindow, k: int) -> InstructionWindow:
        return window.with_bubble_before(k)


class PipelineFlush(CorrectionScheme):
    """Plain pipeline flush and refetch (RazorII-style [9]).

    Cheaper than half-frequency replay: one pipeline refill per event.
    """

    name = "pipeline-flush"

    def __init__(self, extra_cycles: float = 1.0) -> None:
        check_nonnegative("extra_cycles", extra_cycles)
        self.extra_cycles = extra_cycles

    def penalty_cycles(self, pipeline_depth: int) -> float:
        check_positive("pipeline_depth", pipeline_depth)
        return pipeline_depth + self.extra_cycles

    def emulate(self, window: InstructionWindow, k: int) -> InstructionWindow:
        return window.with_bubble_before(k)


class NoCorrection(CorrectionScheme):
    """Detection without correction — errors propagate (baseline for
    ablations; not a safe operating mode)."""

    name = "none"

    def penalty_cycles(self, pipeline_depth: int) -> float:
        return 0.0

    def emulate(self, window: InstructionWindow, k: int) -> InstructionWindow:
        return window  # the next instruction sees the errant state unchanged

    def guarantees_correctness(self) -> bool:
        return False
