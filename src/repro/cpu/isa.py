"""Instruction-set definition.

A compact SPARC-V8-flavoured RISC: 16 general registers (``r0`` hardwired
to zero), 16-bit data words matching the synthetic pipeline's datapath
width, integer condition codes, and the usual ALU / memory / control
instruction groups.  Instructions carry an optional ``set_cc`` flag like
SPARC's ``cc``-suffixed opcodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "WORD_BITS",
    "WORD_MASK",
    "NUM_REGS",
    "Opcode",
    "OpClass",
    "Instruction",
    "op_class",
    "BRANCH_OPS",
]

WORD_BITS = 16
WORD_MASK = (1 << WORD_BITS) - 1
NUM_REGS = 16
#: Link register used by ``call``/``ret``.
LINK_REG = 15


class Opcode(enum.Enum):
    """Executable operations."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    MUL = "mul"
    LD = "ld"
    ST = "st"
    LI = "li"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BGT = "bgt"
    BLE = "ble"
    BCC = "bcc"  # carry clear (unsigned >=)
    BCS = "bcs"  # carry set (unsigned <)
    BA = "ba"
    CALL = "call"
    RET = "ret"
    HALT = "halt"
    NOP = "nop"


class OpClass(enum.Enum):
    """Datapath-relevant grouping, selecting the timing-model features."""

    ADDER = "adder"  # add/sub/compares: ripple-carry unit
    LOGIC = "logic"  # bitwise unit
    SHIFT = "shift"  # barrel shifter
    MULT = "mult"  # array-multiplier slice
    LOAD = "load"  # address adder + memory alignment
    STORE = "store"  # address adder
    CONTROL = "control"  # branches/calls: control network only
    OTHER = "other"  # li / nop / halt


_OP_CLASS: dict[Opcode, OpClass] = {
    Opcode.ADD: OpClass.ADDER,
    Opcode.SUB: OpClass.ADDER,
    Opcode.AND: OpClass.LOGIC,
    Opcode.OR: OpClass.LOGIC,
    Opcode.XOR: OpClass.LOGIC,
    Opcode.SLL: OpClass.SHIFT,
    Opcode.SRL: OpClass.SHIFT,
    Opcode.SRA: OpClass.SHIFT,
    Opcode.MUL: OpClass.MULT,
    Opcode.LD: OpClass.LOAD,
    Opcode.ST: OpClass.STORE,
    Opcode.LI: OpClass.OTHER,
    Opcode.BEQ: OpClass.CONTROL,
    Opcode.BNE: OpClass.CONTROL,
    Opcode.BLT: OpClass.CONTROL,
    Opcode.BGE: OpClass.CONTROL,
    Opcode.BGT: OpClass.CONTROL,
    Opcode.BLE: OpClass.CONTROL,
    Opcode.BCC: OpClass.CONTROL,
    Opcode.BCS: OpClass.CONTROL,
    Opcode.BA: OpClass.CONTROL,
    Opcode.CALL: OpClass.CONTROL,
    Opcode.RET: OpClass.CONTROL,
    Opcode.HALT: OpClass.OTHER,
    Opcode.NOP: OpClass.OTHER,
}

BRANCH_OPS = frozenset(
    {
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.BGT,
        Opcode.BLE,
        Opcode.BCC,
        Opcode.BCS,
        Opcode.BA,
    }
)


def op_class(op: Opcode) -> OpClass:
    """The datapath class of an opcode."""
    return _OP_CLASS[op]


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction.

    Register-register ALU forms set ``rs2``; register-immediate forms leave
    ``rs2`` as ``None`` and use ``imm``.  Memory ops use ``rs1 + imm``
    addressing (``rd`` is the destination for ``ld`` and the *source* data
    register for ``st``).  Branches and calls carry a symbolic ``target``
    resolved by the program container.

    Attributes:
        op: The opcode.
        rd: Destination register (data register for stores).
        rs1: First source register.
        rs2: Second source register, or ``None`` for immediate forms.
        imm: Immediate value (16-bit, two's complement as needed).
        target: Branch/call target label.
        set_cc: Whether the instruction updates the condition codes.
    """

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int | None = None
    imm: int = 0
    target: str | None = None
    set_cc: bool = False

    def __post_init__(self) -> None:
        for name, reg in (("rd", self.rd), ("rs1", self.rs1)):
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"{name} out of range: {reg}")
        if self.rs2 is not None and not 0 <= self.rs2 < NUM_REGS:
            raise ValueError(f"rs2 out of range: {self.rs2}")
        if self.op in BRANCH_OPS or self.op == Opcode.CALL:
            if self.target is None:
                raise ValueError(f"{self.op.value} requires a target label")

    @property
    def op_class(self) -> OpClass:
        return _OP_CLASS[self.op]

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_conditional_branch(self) -> bool:
        return self.op in BRANCH_OPS and self.op != Opcode.BA

    def __str__(self) -> str:
        cc = "cc" if self.set_cc else ""
        op = self.op.value + cc
        if self.op in BRANCH_OPS or self.op == Opcode.CALL:
            return f"{op} {self.target}"
        if self.op in (Opcode.HALT, Opcode.NOP, Opcode.RET):
            return op
        if self.op == Opcode.LI:
            return f"{op} r{self.rd}, {self.imm}"
        if self.op in (Opcode.LD, Opcode.ST):
            sign = "-" if self.imm < 0 else "+"
            return f"{op} r{self.rd}, [r{self.rs1}{sign}{abs(self.imm)}]"
        if self.rs2 is not None:
            return f"{op} r{self.rd}, r{self.rs1}, r{self.rs2}"
        return f"{op} r{self.rd}, r{self.rs1}, {self.imm}"
