"""Fast functional instruction-set simulator.

The simulator plays the role of the paper's LLVM-instrumented native
execution (Section 4, "Datapath Activity Characterization"): it executes
the program at architecture level and exposes, per dynamic instruction, the
operand values the datapath timing model needs.  Each static instruction is
pre-compiled to a closure at load time, keeping the interpreter loop lean.

A *listener* — ``listener(index, a, b, result, next_pc)`` — receives every
dynamic instruction; pass ``None`` to run at full speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import Instruction, Opcode, WORD_BITS, WORD_MASK
from repro.cpu.program import Program
from repro.cpu.state import MachineState

__all__ = ["FunctionalSimulator", "ExecutionResult", "StepRecord"]

_SIGN_BIT = 1 << (WORD_BITS - 1)


@dataclass(frozen=True, slots=True)
class StepRecord:
    """One executed dynamic instruction.

    ``a``/``b`` are the datapath operand values (rs1 value and rs2/immediate
    value; address base and offset for memory ops) and ``result`` the value
    produced (loaded data for ``ld``, stored data for ``st``, taken flag for
    branches).
    """

    index: int
    a: int
    b: int
    result: int
    next_pc: int


@dataclass(frozen=True, slots=True)
class ExecutionResult:
    """Outcome of a :meth:`FunctionalSimulator.run` call."""

    instructions: int
    halted: bool
    final_pc: int


def _signed(x: int) -> int:
    return x - (1 << WORD_BITS) if x & _SIGN_BIT else x


class FunctionalSimulator:
    """Executes a :class:`Program` on a :class:`MachineState`.

    Args:
        program: The program to execute (pre-compiled at construction).
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self._exec = [
            self._compile(i, ins) for i, ins in enumerate(program.instructions)
        ]

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #

    def _compile(self, index: int, ins: Instruction):
        """Build ``fn(state) -> (a, b, result, next_pc)`` for one instruction."""
        op = ins.op
        rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
        imm = ins.imm & WORD_MASK
        set_cc = ins.set_cc
        nxt = index + 1
        target = self.program.target_of(index)

        def read_b(state):
            return state.regs[rs2] if rs2 is not None else imm

        if op in (Opcode.ADD, Opcode.SUB):
            sub = op == Opcode.SUB

            def fn(state, _read_b=read_b):
                a = state.regs[rs1]
                b = _read_b(state)
                full = a - b if sub else a + b
                r = full & WORD_MASK
                if rd:
                    state.regs[rd] = r
                if set_cc:
                    f = state.flags
                    f.z = r == 0
                    f.n = bool(r & _SIGN_BIT)
                    if sub:
                        f.c = a < b  # borrow
                        f.v = bool(((a ^ b) & (a ^ r)) & _SIGN_BIT)
                    else:
                        f.c = full > WORD_MASK
                        f.v = bool((~(a ^ b) & (a ^ r)) & _SIGN_BIT)
                return a, b, r, nxt

            return fn

        if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
            bitop = {
                Opcode.AND: lambda a, b: a & b,
                Opcode.OR: lambda a, b: a | b,
                Opcode.XOR: lambda a, b: a ^ b,
            }[op]

            def fn(state, _read_b=read_b, _bitop=bitop):
                a = state.regs[rs1]
                b = _read_b(state)
                r = _bitop(a, b)
                if rd:
                    state.regs[rd] = r
                if set_cc:
                    f = state.flags
                    f.z = r == 0
                    f.n = bool(r & _SIGN_BIT)
                    f.c = f.v = False
                return a, b, r, nxt

            return fn

        if op in (Opcode.SLL, Opcode.SRL, Opcode.SRA):

            def fn(state, _read_b=read_b, _op=op):
                a = state.regs[rs1]
                b = _read_b(state)
                sh = b & (WORD_BITS - 1)
                if _op == Opcode.SLL:
                    r = (a << sh) & WORD_MASK
                elif _op == Opcode.SRL:
                    r = a >> sh
                else:
                    r = (_signed(a) >> sh) & WORD_MASK
                if rd:
                    state.regs[rd] = r
                if set_cc:
                    f = state.flags
                    f.z = r == 0
                    f.n = bool(r & _SIGN_BIT)
                    f.c = f.v = False
                return a, b, r, nxt

            return fn

        if op == Opcode.MUL:

            def fn(state, _read_b=read_b):
                a = state.regs[rs1]
                b = _read_b(state)
                r = (a * b) & WORD_MASK
                if rd:
                    state.regs[rd] = r
                if set_cc:
                    f = state.flags
                    f.z = r == 0
                    f.n = bool(r & _SIGN_BIT)
                    f.c = f.v = False
                return a, b, r, nxt

            return fn

        if op == Opcode.LI:

            def fn(state):
                if rd:
                    state.regs[rd] = imm
                return 0, imm, imm, nxt

            return fn

        if op == Opcode.LD:

            def fn(state):
                a = state.regs[rs1]
                r = state.memory[(a + imm) & 0xFFFF]
                if rd:
                    state.regs[rd] = r
                return a, imm, r, nxt

            return fn

        if op == Opcode.ST:

            def fn(state):
                a = state.regs[rs1]
                value = state.regs[rd]
                state.memory[(a + imm) & 0xFFFF] = value
                return a, imm, value, nxt

            return fn

        if ins.is_branch:
            cond = self._branch_condition(op)

            def fn(state, _cond=cond):
                taken = _cond(state.flags)
                return (
                    state.flags.as_int(),
                    0,
                    int(taken),
                    target if taken else nxt,
                )

            return fn

        if op == Opcode.CALL:

            def fn(state):
                state.regs[15] = nxt & WORD_MASK
                return nxt, 0, 0, target

            return fn

        if op == Opcode.RET:

            def fn(state):
                return state.regs[15], 0, 0, state.regs[15]

            return fn

        if op == Opcode.HALT:

            def fn(state):
                state.halted = True
                return 0, 0, 0, index

            return fn

        if op == Opcode.NOP:

            def fn(state):
                return 0, 0, 0, nxt

            return fn

        raise NotImplementedError(f"opcode {op}")

    @staticmethod
    def _branch_condition(op: Opcode):
        return {
            Opcode.BA: lambda f: True,
            Opcode.BEQ: lambda f: f.z,
            Opcode.BNE: lambda f: not f.z,
            Opcode.BLT: lambda f: f.n != f.v,
            Opcode.BGE: lambda f: f.n == f.v,
            Opcode.BGT: lambda f: (not f.z) and f.n == f.v,
            Opcode.BLE: lambda f: f.z or f.n != f.v,
            Opcode.BCC: lambda f: not f.c,
            Opcode.BCS: lambda f: f.c,
        }[op]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self, state: MachineState) -> StepRecord:
        """Execute the instruction at ``state.pc``."""
        index = state.pc
        a, b, r, nxt = self._exec[index](state)
        state.pc = nxt
        return StepRecord(index, a, b, r, nxt)

    def run(
        self,
        state: MachineState,
        max_instructions: int = 10_000_000,
        listener=None,
    ) -> ExecutionResult:
        """Run until ``halt`` or the instruction budget is exhausted.

        Raises ``RuntimeError`` if the program counter leaves the program
        (falling off the end without ``halt``).
        """
        execute = self._exec
        n = len(execute)
        count = 0
        pc = state.pc
        if listener is None:
            while count < max_instructions and not state.halted:
                if not 0 <= pc < n:
                    raise RuntimeError(f"program counter out of range: {pc}")
                _, _, _, pc = execute[pc](state)
                count += 1
        else:
            while count < max_instructions and not state.halted:
                if not 0 <= pc < n:
                    raise RuntimeError(f"program counter out of range: {pc}")
                a, b, r, nxt = execute[pc](state)
                listener(pc, a, b, r, nxt)
                pc = nxt
                count += 1
        state.pc = pc
        return ExecutionResult(
            instructions=count, halted=state.halted, final_pc=pc
        )
