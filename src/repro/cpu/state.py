"""Architectural state of the modelled processor."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.isa import NUM_REGS, WORD_MASK

__all__ = ["Flags", "MachineState", "MEMORY_WORDS"]

#: Size of the word-addressed data memory.
MEMORY_WORDS = 1 << 16


@dataclass(slots=True)
class Flags:
    """Integer condition codes (SPARC icc): zero, negative, carry, overflow."""

    z: bool = False
    n: bool = False
    c: bool = False
    v: bool = False

    def as_int(self) -> int:
        """Pack into a 4-bit value (z | n<<1 | c<<2 | v<<3)."""
        return (
            int(self.z) | (int(self.n) << 1) | (int(self.c) << 2)
            | (int(self.v) << 3)
        )


class MachineState:
    """Registers, flags, memory, and program counter.

    ``r0`` reads as zero and ignores writes.  Memory is word-addressed with
    16-bit words and wraps modulo :data:`MEMORY_WORDS`.
    """

    __slots__ = ("regs", "flags", "memory", "pc", "halted")

    def __init__(self) -> None:
        self.regs = [0] * NUM_REGS
        self.flags = Flags()
        self.memory = [0] * MEMORY_WORDS
        self.pc = 0
        self.halted = False

    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & WORD_MASK

    def read_mem(self, address: int) -> int:
        return self.memory[address % MEMORY_WORDS]

    def write_mem(self, address: int, value: int) -> None:
        self.memory[address % MEMORY_WORDS] = value & WORD_MASK

    def load_words(self, base: int, values) -> None:
        """Bulk-initialize memory starting at ``base``."""
        for i, v in enumerate(values):
            self.write_mem(base + i, int(v))

    def dump_words(self, base: int, count: int) -> list[int]:
        """Read ``count`` consecutive words starting at ``base``."""
        return [self.read_mem(base + i) for i in range(count)]

    def reset(self) -> None:
        """Back to the power-on state."""
        self.regs = [0] * NUM_REGS
        self.flags = Flags()
        self.memory = [0] * MEMORY_WORDS
        self.pc = 0
        self.halted = False
