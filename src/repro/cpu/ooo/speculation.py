"""Speculation manager: misprediction detection and front-end recovery.

Couples the branch predictor to the resolved outcomes of a replayed
window: every conditional branch is predicted at fetch, trained at
resolution, and — when the prediction was wrong — the front end
restarts after the resolving broadcast.  The window's records are the
committed path (the functional simulator never follows wrong paths), so
recovery manifests purely as fetch-delay, which is exactly what the
occupancy timing model needs.
"""

from __future__ import annotations

from repro.cpu.ooo.branch_predictor import TwoBitPredictor

__all__ = ["SpeculationManager"]


class SpeculationManager:
    """Deterministic per-window branch-speculation bookkeeping.

    Args:
        predictor: The branch predictor consulted at fetch (a fresh
            :class:`TwoBitPredictor` when omitted).
    """

    def __init__(self, predictor: TwoBitPredictor | None = None) -> None:
        self.predictor = predictor or TwoBitPredictor()
        self.mispredictions = 0

    def resolve(self, index: int, taken: bool, resolve_cycle: int) -> int | None:
        """Predict, train, and report recovery for one conditional branch.

        Args:
            index: Static instruction index of the branch.
            taken: The architected outcome (from the
                :class:`~repro.cpu.interpreter.StepRecord` replay).
            resolve_cycle: Cycle the branch's resolution broadcasts.

        Returns:
            The cycle the front end may fetch again (misprediction
            recovery), or ``None`` when the prediction was correct.
        """
        predicted = self.predictor.predict(index)
        self.predictor.update(index, taken)
        if predicted == taken:
            return None
        self.mispredictions += 1
        return resolve_cycle + 1

    def reset(self) -> None:
        """Fresh predictor state (per characterization window)."""
        self.predictor.reset()
        self.mispredictions = 0
