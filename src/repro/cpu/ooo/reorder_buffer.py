"""Reorder buffer: in-order allocation and commit over a bounded window.

The ROB gives the timing model its two in-order constraints: rename
stalls when the buffer is full (the allocating instruction must wait
for the head to commit) and commit retires at most one instruction per
cycle in program order.
"""

from __future__ import annotations

__all__ = ["ReorderBuffer"]


class ReorderBuffer:
    """Bounded in-order allocate/commit tracking.

    Args:
        capacity: Maximum in-flight (renamed, uncommitted) instructions.
        commit_width: Instructions retired per cycle (1 for the modelled
            single-issue core).
    """

    def __init__(self, capacity: int = 16, commit_width: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if commit_width != 1:
            raise ValueError("only commit_width=1 is modelled")
        self.capacity = capacity
        self.commit_width = commit_width
        #: Commit cycles of allocated entries, in allocation order.
        self._commits: list[int] = []

    @property
    def allocated(self) -> int:
        return len(self._commits)

    def earliest_allocate(self, cycle: int) -> int:
        """First cycle >= ``cycle`` with a free entry.

        With ``capacity`` entries in flight, the next allocation waits
        for the oldest of the last ``capacity`` commits.
        """
        if len(self._commits) < self.capacity:
            return cycle
        head_commit = self._commits[-self.capacity]
        return max(cycle, head_commit + 1)

    def commit_cycle(self, result_cycle: int) -> int:
        """Allocate the next entry and return its in-order commit cycle.

        The entry retires one cycle after its result is on the CDB, no
        earlier than one cycle after the previous entry's commit.
        """
        commit = result_cycle + 1
        if self._commits:
            commit = max(commit, self._commits[-1] + 1)
        self._commits.append(commit)
        return commit

    def drain_cycle(self, cycle: int) -> int:
        """First cycle > every outstanding commit (a full flush barrier)."""
        if not self._commits:
            return cycle
        return max(cycle, self._commits[-1] + 1)

    def reset(self) -> None:
        """Empty the buffer (fresh per characterization window)."""
        self._commits.clear()
