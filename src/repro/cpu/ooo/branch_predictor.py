"""2-bit saturating-counter branch predictor.

The classic bimodal predictor: one 2-bit counter per static branch,
initialized weakly-not-taken.  Characterization windows are short and
the model is replayed deterministically, so the table is indexed by the
static instruction index directly (no aliasing) and reset per window.
"""

from __future__ import annotations

__all__ = ["TwoBitPredictor"]

#: Counter states: 0/1 predict not-taken, 2/3 predict taken.
_WEAK_NOT_TAKEN = 1
_MAX_STATE = 3


class TwoBitPredictor:
    """Per-static-branch 2-bit saturating counters.

    Args:
        initial: Initial counter state for unseen branches
            (default weakly-not-taken).
    """

    def __init__(self, initial: int = _WEAK_NOT_TAKEN) -> None:
        if not 0 <= initial <= _MAX_STATE:
            raise ValueError(f"initial state must be 0..3, got {initial}")
        self.initial = initial
        self._counters: dict[int, int] = {}

    def predict(self, index: int) -> bool:
        """Predicted taken/not-taken for static instruction ``index``."""
        return self._counters.get(index, self.initial) >= 2

    def update(self, index: int, taken: bool) -> None:
        """Train the counter with the resolved outcome."""
        state = self._counters.get(index, self.initial)
        state = min(state + 1, _MAX_STATE) if taken else max(state - 1, 0)
        self._counters[index] = state

    def reset(self) -> None:
        """Forget all training (fresh per characterization window)."""
        self._counters.clear()
