"""Reservation stations: dispatch capacity and operand wait tracking.

Stations are grouped by functional-unit class (ALU-like, memory,
branch).  The timing model needs two things from them: *when* an
instruction can be dispatched (a station in its group must be free) and
*when* its station frees again (after the result broadcasts on the
CDB), both answered deterministically.
"""

from __future__ import annotations

from repro.cpu.isa import OpClass

__all__ = ["ReservationStations", "station_group"]

#: Functional-unit station groups.
_ALU = "alu"
_MEM = "mem"
_BRANCH = "branch"


def station_group(op_class: OpClass) -> str:
    """The reservation-station group serving an opcode class."""
    if op_class in (OpClass.LOAD, OpClass.STORE):
        return _MEM
    if op_class is OpClass.CONTROL:
        return _BRANCH
    return _ALU


class ReservationStations:
    """Per-group station pools with deterministic free-cycle tracking.

    Args:
        n_alu: Stations serving adder/logic/shift/multiply ops.
        n_mem: Stations serving loads and stores.
        n_branch: Stations serving control transfers.
    """

    def __init__(
        self, n_alu: int = 4, n_mem: int = 2, n_branch: int = 2
    ) -> None:
        for name, value in (
            ("n_alu", n_alu), ("n_mem", n_mem), ("n_branch", n_branch)
        ):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        #: group -> busy-until cycle per station (0 = free from cycle 0).
        self._busy: dict[str, list[int]] = {
            _ALU: [0] * n_alu,
            _MEM: [0] * n_mem,
            _BRANCH: [0] * n_branch,
        }

    def earliest_dispatch(self, group: str, cycle: int) -> int:
        """First cycle >= ``cycle`` with a free station in ``group``."""
        return max(cycle, min(self._busy[group]))

    def occupy(self, group: str, dispatch: int, free: int) -> None:
        """Claim the earliest-free station from ``dispatch`` until ``free``.

        Stations are picked lowest-index-first among the least busy —
        a fixed tie-break that keeps replays deterministic.
        """
        stations = self._busy[group]
        pick = min(range(len(stations)), key=lambda i: (stations[i], i))
        if stations[pick] > dispatch:
            raise ValueError(
                f"no free {group} station at cycle {dispatch} "
                f"(earliest {stations[pick]})"
            )
        stations[pick] = free

    def flush_after(self, cycle: int) -> None:
        """Release stations still busy past ``cycle`` (recovery flush)."""
        for stations in self._busy.values():
            for i, busy in enumerate(stations):
                if busy > cycle:
                    stations[i] = cycle

    def reset(self) -> None:
        """Free every station (fresh per characterization window)."""
        for stations in self._busy.values():
            for i in range(len(stations)):
                stations[i] = 0
