"""Occupancy scheduling for the speculative out-of-order (Tomasulo) core.

Maps characterization windows onto per-cycle stage occupancy of an
8-stage speculative machine::

    IF -> ID -> RN -> IS -> EX -> ME -> WB -> CM

with an in-order single-issue front end (fetch / decode / rename), a
reorder buffer bounding the in-flight window, grouped reservation
stations, out-of-order issue, a single common data bus arbitrated
oldest-first, and in-order commit.  Conditional branches are predicted
with 2-bit counters; a misprediction stalls fetch until the branch's
CDB broadcast.  Bubble slots (``None``) model correction flushes: the
front end drains the reorder buffer before refetching, which is the
recovery behaviour the correction-emulation windows (p^e) need.

The model is fully deterministic: replaying the same window always
produces the same schedule, so characterization results are replayable
and cache-stable — the same property the in-order
:class:`~repro.cpu.pipeline.PipelineScheduler` guarantees.

Unlike the in-order core an instruction's trajectory is not
``entry + s``; downstream DTS analysis receives explicit
``(stage, cycle)`` pairs via :meth:`OoOScheduler.entries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.interpreter import StepRecord
from repro.cpu.isa import Opcode, OpClass, WORD_MASK
from repro.cpu.ooo.reorder_buffer import ReorderBuffer
from repro.cpu.ooo.reservation_station import ReservationStations, station_group
from repro.cpu.ooo.speculation import SpeculationManager
from repro.cpu.pipeline import InstructionWindow, _ex_overrides, _flags_proxy
from repro.cpu.program import Program
from repro.logicsim.stimulus import PipelineCycle, StageOccupancy

__all__ = ["OoOScheduler", "make_ooo_scheduler"]

#: Stage indices of the modelled machine.
IF, ID, RN, IS, EX, ME, WB, CM = range(8)
NUM_STAGES = 8

#: Reorder-buffer tag width (32 entries >= the modelled ROB capacity).
_TAG_MASK = 0x1F

#: Execute latency per opcode class (cycles in EX).
_EX_LATENCY = {OpClass.MULT: 3}

#: Opcode classes whose result is written back to the register file.
_WRITING_CLASSES = frozenset(
    {OpClass.ADDER, OpClass.LOGIC, OpClass.SHIFT, OpClass.MULT, OpClass.LOAD}
)


@dataclass(slots=True)
class _SlotTiming:
    """Resolved cycle numbers for one window slot."""

    fetch: int
    rename: int
    issue: int
    ex_cycles: list[int]
    me: int | None
    wb: int
    commit: int


@dataclass(slots=True)
class _Plan:
    """A fully-resolved window schedule.

    Attributes:
        claims: ``(stage, cycle) -> slot index`` occupant map —
            oldest-first, so a younger instruction never displaces an
            older one from a stage it also wants.
        slot_pairs: Per slot, the (stage, cycle) pairs it actually
            occupies (its claims that won arbitration); bubbles get an
            empty list.
        n_cycles: Schedule length.
    """

    claims: dict[tuple[int, int], int] = field(default_factory=dict)
    slot_pairs: list[list[tuple[int, int]]] = field(default_factory=list)
    n_cycles: int = 1


class OoOScheduler:
    """Deterministic Tomasulo occupancy model over instruction windows.

    Args:
        program: The program the window's records refer to.
        num_stages: Pipeline depth; must equal 8 (the IF..CM stages).
        rob_capacity: Reorder-buffer entries bounding the in-flight window.
        n_alu: ALU-group reservation stations.
        n_mem: Memory-group reservation stations.
        n_branch: Branch-group reservation stations.
    """

    def __init__(
        self,
        program: Program,
        num_stages: int = NUM_STAGES,
        rob_capacity: int = 16,
        n_alu: int = 4,
        n_mem: int = 2,
        n_branch: int = 2,
    ) -> None:
        if num_stages != NUM_STAGES:
            raise ValueError(
                f"the Tomasulo model has {NUM_STAGES} stages, got {num_stages}"
            )
        self.program = program
        self.num_stages = num_stages
        self.rob_capacity = rob_capacity
        self.n_alu = n_alu
        self.n_mem = n_mem
        self.n_branch = n_branch
        self._last_window: InstructionWindow | None = None
        self._last_plan: _Plan | None = None

    # ------------------------------------------------------------------ #
    # Timing resolution
    # ------------------------------------------------------------------ #

    def _resolve(self, window: InstructionWindow) -> list[_SlotTiming | None]:
        """Per-slot cycle numbers, replayed in program order."""
        rob = ReorderBuffer(capacity=self.rob_capacity)
        stations = ReservationStations(self.n_alu, self.n_mem, self.n_branch)
        spec = SpeculationManager()
        cdb_busy: set[int] = set()
        last_writer: dict[int, int] = {}
        timings: list[_SlotTiming | None] = []
        next_fetch = 0
        prev_rename = -1
        for i, record in enumerate(window.slots):
            if record is None:
                # Correction-flush barrier: the front end idles until
                # every in-flight instruction has committed.
                next_fetch = rob.drain_cycle(next_fetch + 1)
                timings.append(None)
                continue
            ins = self.program[record.index]
            fetch = next_fetch
            next_fetch = fetch + 1
            group = station_group(ins.op_class)
            rename = max(fetch + 2, prev_rename + 1)
            rename = rob.earliest_allocate(rename)
            rename = stations.earliest_dispatch(group, rename)
            prev_rename = rename
            # Out-of-order wakeup: wait for the youngest older producer
            # of each source register to broadcast on the CDB.
            issue = rename + 1
            sources = {ins.rs1}
            if ins.rs2 is not None:
                sources.add(ins.rs2)
            if ins.op == Opcode.ST:
                sources.add(ins.rd)
            for reg in sources:
                if reg == 0:
                    continue
                producer = last_writer.get(reg)
                if producer is not None:
                    prod = timings[producer]
                    if prod is not None:
                        issue = max(issue, prod.wb + 1)
            ex_lat = _EX_LATENCY.get(ins.op_class, 1)
            ex_cycles = [issue + 1 + c for c in range(ex_lat)]
            is_mem = ins.op_class in (OpClass.LOAD, OpClass.STORE)
            me = ex_cycles[-1] + 1 if is_mem else None
            result_cycle = me if me is not None else ex_cycles[-1]
            # Single CDB, oldest-first: program order is arbitration order.
            wb = result_cycle + 1
            while wb in cdb_busy:
                wb += 1
            cdb_busy.add(wb)
            stations.occupy(group, rename, wb)
            commit = rob.commit_cycle(wb)
            if ins.is_conditional_branch:
                restart = spec.resolve(record.index, bool(record.result), wb)
                if restart is not None:
                    next_fetch = max(next_fetch, restart)
            if ins.op_class in _WRITING_CLASSES or ins.op == Opcode.LI:
                if ins.rd != 0:
                    last_writer[ins.rd] = i
            elif ins.op == Opcode.CALL:
                last_writer[15] = i
            timings.append(
                _SlotTiming(fetch, rename, issue, ex_cycles, me, wb, commit)
            )
        return timings

    def _plan(self, window: InstructionWindow) -> _Plan:
        """Resolve and arbitrate a window (memoized on window identity)."""
        if window is self._last_window and self._last_plan is not None:
            return self._last_plan
        timings = self._resolve(window)
        plan = _Plan(slot_pairs=[[] for _ in window.slots])
        last_cycle = 0
        for i, t in enumerate(timings):
            if t is None:
                continue
            wanted = [(IF, t.fetch), (ID, t.fetch + 1), (RN, t.rename),
                      (IS, t.issue)]
            wanted.extend((EX, c) for c in t.ex_cycles)
            if t.me is not None:
                wanted.append((ME, t.me))
            wanted.extend([(WB, t.wb), (CM, t.commit)])
            for pair in wanted:
                if pair not in plan.claims:
                    plan.claims[pair] = i
                    plan.slot_pairs[i].append(pair)
                last_cycle = max(last_cycle, pair[1])
        plan.n_cycles = last_cycle + 1
        self._last_window = window
        self._last_plan = plan
        return plan

    # ------------------------------------------------------------------ #
    # Occupancy encoding
    # ------------------------------------------------------------------ #

    def _occupancy(
        self,
        stage: int,
        record: StepRecord,
        prev: StepRecord | None,
    ) -> StageOccupancy:
        ins = self.program[record.index]
        token = self.program.token_of(record.index)
        op_token = self.program.op_token_of(record.index)
        class_token = self.program.class_token_of(record.index)
        a, b, result = record.a, record.b, record.result
        tag = record.index & _TAG_MASK
        overrides: dict[int, bool] = {}
        if stage == EX:
            overrides = _ex_overrides(ins)
        elif stage in (ME, WB):
            overrides = {0: ins.op == Opcode.LD}
        if stage == IF:
            data = {
                "pc": record.index & WORD_MASK,
                "pc_next": record.index & WORD_MASK,
                "fetch_imm": ins.imm & 0xFF,
            }
        elif stage == RN:
            data = {"rn_tag": tag}
        elif stage == IS:
            data = {"rs_a": a & WORD_MASK, "rs_b": b & WORD_MASK}
        elif stage == EX:
            data = {
                "op_a": a & WORD_MASK,
                "op_b": b & WORD_MASK,
                "cc": _flags_proxy(prev),
            }
        elif stage == ME:
            if ins.op in (Opcode.LD, Opcode.ST):
                address = (a + ins.imm) & WORD_MASK
                loaded = result & WORD_MASK if ins.op == Opcode.LD else 0
            else:
                address = result & WORD_MASK
                loaded = 0
            data = {
                "ma": address,
                "mem_d": loaded,
                "ex_result": result & WORD_MASK,
            }
        elif stage == WB:
            data = {"cdb_val": result & WORD_MASK, "cdb_tag": tag}
        elif stage == CM:
            data = {"cm_val": result & WORD_MASK}
        else:
            data = {}
        return StageOccupancy(
            token=token,
            op_token=op_token,
            class_token=class_token,
            data=data,
            ctrl_overrides=overrides,
        )

    def schedule(self, window: InstructionWindow) -> list[PipelineCycle]:
        """Per-cycle occupancy of a window through the Tomasulo machine.

        Every (stage, cycle) has at most one occupant — the oldest
        instruction wanting it — and unoccupied stages carry bubble
        occupancies, mirroring the in-order scheduler's contract (each
        cycle has exactly ``num_stages`` entries).
        """
        plan = self._plan(window)
        slots = window.slots
        prevs: list[StepRecord | None] = []
        prev: StepRecord | None = None
        for slot in slots:
            prevs.append(prev)
            if slot is not None:
                prev = slot
        cycles: list[PipelineCycle] = []
        for c in range(plan.n_cycles):
            cycle: PipelineCycle = []
            for s in range(self.num_stages):
                i = plan.claims.get((s, c))
                if i is None:
                    cycle.append(StageOccupancy())
                else:
                    cycle.append(self._occupancy(s, slots[i], prevs[i]))
            cycles.append(cycle)
        return cycles

    def entries(
        self, window: InstructionWindow, slot_indices: list[int]
    ) -> list[list[tuple[int, int]]]:
        """Explicit (stage, cycle) trajectories for the given slots.

        The DTS analyzers consume these instead of the in-order
        ``entry + s`` walk; only stage-cycles the slot actually won in
        arbitration are included.
        """
        plan = self._plan(window)
        return [list(plan.slot_pairs[i]) for i in slot_indices]

    def entry_cycle(self, slot_index: int) -> int:
        """Unsupported: out-of-order trajectories are window-dependent."""
        raise NotImplementedError(
            "OoOScheduler has no window-independent entry cycle; "
            "use entries(window, slot_indices)"
        )


def make_ooo_scheduler(program: Program, pipeline) -> OoOScheduler:
    """Family hook: build the Tomasulo scheduler for a generated pipeline."""
    return OoOScheduler(program, num_stages=pipeline.num_stages)
