"""Speculative out-of-order (Tomasulo) core family.

Deterministic timing and occupancy model of a single-issue Tomasulo
machine: an in-order front end (fetch/decode/rename) feeding
reservation stations, out-of-order issue to the functional units, a
single result bus (CDB) arbitrated oldest-first, and in-order commit
through a reorder buffer.  Conditional branches are predicted with
2-bit saturating counters; mispredictions resolve at execute and
restart the front end, and correction events flush through the same
recovery path.

The package mirrors the arq3 tomasulo layout cited in ROADMAP:
``reservation_station`` / ``reorder_buffer`` / ``branch_predictor`` /
``speculation`` components composed by ``scheduler``.
"""

from repro.cpu.ooo.branch_predictor import TwoBitPredictor
from repro.cpu.ooo.reorder_buffer import ReorderBuffer
from repro.cpu.ooo.reservation_station import ReservationStations
from repro.cpu.ooo.scheduler import OoOScheduler, make_ooo_scheduler
from repro.cpu.ooo.speculation import SpeculationManager

__all__ = [
    "TwoBitPredictor",
    "ReorderBuffer",
    "ReservationStations",
    "SpeculationManager",
    "OoOScheduler",
    "make_ooo_scheduler",
]
