"""A SPARC-V8-flavoured in-order processor substrate.

Provides the program-side half of the framework: a compact RISC ISA with
condition codes (standing in for the LEON3 integer unit's SPARC V8), an
assembler, a fast functional instruction-set simulator used for datapath
activity characterization and profiling, a pipeline occupancy model that
feeds the control-network characterizer, and the error-correction schemes
whose dynamic effect conditions the instruction error probabilities.
"""

from repro.cpu.isa import (
    Opcode,
    Instruction,
    OpClass,
    op_class,
    WORD_BITS,
    WORD_MASK,
)
from repro.cpu.program import Program
from repro.cpu.assembler import assemble, AssemblyError
from repro.cpu.state import MachineState, Flags
from repro.cpu.interpreter import FunctionalSimulator, ExecutionResult, StepRecord
from repro.cpu.pipeline import PipelineScheduler, InstructionWindow
from repro.cpu.correction import (
    CorrectionScheme,
    ReplayHalfFrequency,
    PipelineFlush,
    NoCorrection,
)

__all__ = [
    "Opcode",
    "Instruction",
    "OpClass",
    "op_class",
    "WORD_BITS",
    "WORD_MASK",
    "Program",
    "assemble",
    "AssemblyError",
    "MachineState",
    "Flags",
    "FunctionalSimulator",
    "ExecutionResult",
    "StepRecord",
    "PipelineScheduler",
    "InstructionWindow",
    "CorrectionScheme",
    "ReplayHalfFrequency",
    "PipelineFlush",
    "NoCorrection",
]
