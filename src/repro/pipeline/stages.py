"""Stage backends: the registered implementations of each pipeline stage.

Each stage of the estimation flow has one or more backends registered
into :data:`repro.pipeline.registry.REGISTRY`:

====================  ==========================================  ===========================
stage                 backends                                    contract
====================  ==========================================  ===========================
``netlist``           ``generator``                               ProcessorConfig -> ProcessorModel
``datapath``          ``trainer``                                 processor -> DatapathTimingModel (period-independent)
``dta``               ``kernels`` / ``windowpool`` / ``reference``  training samples -> ControlTimingModel + window artifacts
``statmin``           ``clark`` / ``montecarlo``                  slack Gaussians + covariance -> min Gaussian
``errormodel``        ``joint``                                   operand samples -> per-block conditional probabilities
``estimate``          ``analytic``                                marginals + profile -> lambda / mixture / bounds
``validate``          ``montecarlo``                              processor + program -> per-chip measured rates
====================  ==========================================  ===========================

``dta.kernels`` and ``dta.windowpool`` are the same mathematics (the
pool is byte-identical to serial by construction), so they share a
``cache_id`` and a warm artifact store serves either; ``dta.reference``
runs the unvectorized ground-truth path and gets its own cache
identity.  ``statmin`` backends are consulted *inside* Algorithm 1's
``combine`` via :func:`~repro.pipeline.registry.active_backend` — the
registry stays out of that hot loop.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext

from repro.pipeline.ir import (
    ControlArtifactIR,
    DatapathArtifactIR,
    TrainingArtifacts,
    WindowArtifactIR,
)
from repro.pipeline.registry import REGISTRY

__all__ = [
    "base_processor",
    "processor_for",
    "GeneratorNetlistBackend",
    "DatapathTrainerBackend",
    "KernelsDTABackend",
    "WindowPoolDTABackend",
    "ReferenceDTABackend",
    "ClarkStatMinBackend",
    "MonteCarloStatMinBackend",
    "JointErrorModelBackend",
    "AnalyticEstimateBackend",
    "MonteCarloValidateBackend",
]


# --------------------------------------------------------------------- #
# Per-process processor registry (shared with fork-pool workers)
# --------------------------------------------------------------------- #

#: Per-process registry of built processors.  Under the fork start
#: method the parent's warmed entries (base processor, SSTA baseline,
#: datapath model) are inherited by every worker for free.
_PROCESSORS: dict[str, object] = {}
_DERIVED: dict[tuple[str, float], object] = {}


def base_processor(config):
    """The built (and registry-shared) processor for ``config``."""
    key = config.digest()
    if key not in _PROCESSORS:
        _PROCESSORS[key] = config.build()
    return _PROCESSORS[key]


def processor_for(config, speculation):
    """``config``'s processor at ``speculation`` (derived, shared engines)."""
    base = base_processor(config)
    if speculation is None or speculation == base.speculation:
        return base
    key = (config.digest(), speculation)
    if key not in _DERIVED:
        _DERIVED[key] = base.derive(speculation=speculation)
    return _DERIVED[key]


# --------------------------------------------------------------------- #
# netlist
# --------------------------------------------------------------------- #


@REGISTRY.register(
    "netlist",
    "generator",
    description="Parameterized netlist generator + SSTA-derived operating point",
    default=True,
)
class GeneratorNetlistBackend:
    """Builds (and memoizes per process) the processor model."""

    def build(self, config):
        return base_processor(config)

    def derive(self, config, speculation):
        return processor_for(config, speculation)


# --------------------------------------------------------------------- #
# datapath
# --------------------------------------------------------------------- #


@REGISTRY.register(
    "datapath",
    "trainer",
    description="Operand-dependent datapath timing model fit (period-independent)",
    default=True,
)
class DatapathTrainerBackend:
    """Trains or restores the shared datapath timing model."""

    def ensure(self, processor, key=None, store=None, namespace="datapath"):
        """Attach the datapath model, via the store when available.

        Returns ``True`` on a store hit, ``False`` on train+put, and
        ``None`` when running storeless (model trained or already
        cached on the processor).
        """
        if store is None or key is None:
            _ = processor.datapath_model
            return None
        from repro.dta.datapath import DatapathTimingModel

        doc = store.get_entry(namespace, key)
        if doc is not None:
            artifact = DatapathArtifactIR.from_doc(doc)
            processor.datapath_model = DatapathTimingModel.from_json(
                artifact.doc["model"]
            )
            return True
        store.put_entry(
            namespace,
            key,
            {
                "schema": DatapathArtifactIR.SCHEMA,
                "model": processor.datapath_model.to_json(),
            },
        )
        return False


# --------------------------------------------------------------------- #
# dta (control characterization)
# --------------------------------------------------------------------- #


class _DTABackendBase:
    """Shared control-characterization flow; subclasses pick the kernel
    configuration (via :meth:`activation`) and pool width."""

    def __init__(
        self, window_workers: int = 1, executor: str = "auto"
    ) -> None:
        if window_workers < 1:
            raise ValueError("window_workers must be >= 1")
        self.window_workers = window_workers
        self.executor = executor

    @contextmanager
    def activation(self):
        """Kernel-configuration context the stage body runs under.

        The default inherits the ambient :func:`repro.kernels.kernel_config`
        — crucially, an enclosing ``configure_kernels(reference=True)``
        still applies, so backend selection composes with (rather than
        overrides) explicit kernel experiments.
        """
        with nullcontext():
            yield

    def build_characterizer(self, processor, program, activity_cache):
        from repro.dta.characterize import ControlCharacterizer

        return ControlCharacterizer(
            processor.pipeline,
            processor.control_analyzer,
            program,
            processor.scheme,
            processor.clock_period,
            activity_cache=activity_cache,
            window_workers=self.window_workers,
            executor=self.executor,
            scheduler=processor.make_scheduler(program),
        )

    @staticmethod
    def collect_training_samples(
        program, setup=None, max_instructions: int = 2_000_000
    ):
        """The period-independent half of training: one functional run.

        Returns ``(cfg, samples, instructions)`` — the program's CFG,
        the captured (block, edge) execution windows, and the simulated
        instruction count.  Shared verbatim by :meth:`train` and the
        multi-operating-point :meth:`train_grid`.
        """
        from repro.cfg.cfg import build_cfg
        from repro.cpu.interpreter import FunctionalSimulator
        from repro.cpu.state import MachineState
        from repro.dta.characterize import ControlSampleCollector

        cfg = build_cfg(program)
        simulator = FunctionalSimulator(program)
        state = MachineState()
        if setup is not None:
            setup(state)
        collector = ControlSampleCollector(cfg)
        result = simulator.run(
            state, max_instructions=max_instructions,
            listener=collector.listener,
        )
        return cfg, collector.samples, result.instructions

    def train(
        self,
        processor,
        program,
        activity_cache,
        setup=None,
        max_instructions: int = 2_000_000,
    ) -> TrainingArtifacts:
        """Characterize the program's control network on a training run."""
        from repro.kernels import kernel_stats

        start = time.perf_counter()
        kernels_before = kernel_stats().snapshot()
        cfg, samples, instructions = self.collect_training_samples(
            program, setup, max_instructions
        )
        with self.activation():
            characterizer = self.build_characterizer(
                processor, program, activity_cache
            )
            control_model = characterizer.characterize(samples)
            # The datapath model is shared across programs; its (cached)
            # construction is charged to the first training phase using it.
            _ = processor.datapath_model
        elapsed = time.perf_counter() - start
        return TrainingArtifacts(
            cfg=cfg,
            control_model=control_model,
            characterizer=characterizer,
            training_seconds=elapsed,
            training_instructions=instructions,
            clock_period=processor.clock_period,
            kernel_stats=kernel_stats().delta(kernels_before).to_json(),
        )

    def train_grid(
        self,
        processors,
        program,
        activity_cache,
        setup=None,
        max_instructions: int = 2_000_000,
    ) -> list[TrainingArtifacts]:
        """Train at many operating points from one shared functional run.

        ``processors`` are the same configuration at different
        speculative clock periods (derived off one base, so they share
        the control analyzer's path registry).  The training functional
        simulation runs once and every window is scheduled, encoded, and
        logic-simulated once; only the DTS evaluation fans out over the
        period axis (:func:`~repro.dta.characterize.characterize_grid`).
        Returns per-point :class:`TrainingArtifacts` whose control
        models are byte-identical to per-point :meth:`train` calls.
        """
        from repro.dta.characterize import characterize_grid
        from repro.kernels import kernel_stats

        start = time.perf_counter()
        kernels_before = kernel_stats().snapshot()
        cfg, samples, instructions = self.collect_training_samples(
            program, setup, max_instructions
        )
        with self.activation():
            characterizers = [
                self.build_characterizer(p, program, activity_cache)
                for p in processors
            ]
            models = characterize_grid(characterizers, samples)
            _ = processors[0].datapath_model
        elapsed = time.perf_counter() - start
        # The batched pass cannot attribute counters per point; charge
        # the whole training delta to the first artifact so aggregates
        # stay truthful (the rest carry none, like store-loaded ones).
        kernels = kernel_stats().delta(kernels_before).to_json()
        return [
            TrainingArtifacts(
                cfg=cfg,
                control_model=model,
                characterizer=characterizer,
                training_seconds=elapsed,
                training_instructions=instructions,
                clock_period=processor.clock_period,
                kernel_stats=kernels if i == 0 else None,
            )
            for i, (processor, characterizer, model) in enumerate(
                zip(processors, characterizers, models)
            )
        ]

    def artifacts_from_doc(
        self, processor, program, activity_cache, doc: dict
    ) -> TrainingArtifacts:
        """Rebuild :class:`TrainingArtifacts` from a persisted document."""
        from repro.cfg.cfg import build_cfg
        from repro.dta.characterize import ControlTimingModel

        artifact = ControlArtifactIR.from_doc(doc)
        stored_period = artifact.doc.get("clock_period")
        if stored_period is None:
            raise ValueError(
                "artifacts document does not record a clock period; "
                "re-train and re-save with this version"
            )
        period = processor.clock_period
        if abs(float(stored_period) - period) > 1e-6 * period:
            raise ValueError(
                f"artifacts were trained at clock period "
                f"{float(stored_period):.3f} ps but this processor runs "
                f"at {period:.3f} ps; re-train for this operating point"
            )
        cfg = build_cfg(program)
        with self.activation():
            characterizer = self.build_characterizer(
                processor, program, activity_cache
            )
        return TrainingArtifacts(
            cfg=cfg,
            control_model=ControlTimingModel.from_json(
                artifact.doc["control_model"]
            ),
            characterizer=characterizer,
            training_seconds=float(artifact.doc["training_seconds"]),
            training_instructions=int(artifact.doc["training_instructions"]),
            clock_period=float(stored_period),
        )

    def characterize_missing(self, artifacts, samples) -> None:
        """On-demand characterization for blocks/edges unseen in training.

        Blocks reached only by the evaluation dataset get characterized
        from the simulation-phase window (with the single pre-entry
        record as the pipeline-sharing tail); missing pairs are batched
        through the same window-analysis pool as training, in sorted key
        order.
        """
        model = artifacts.control_model
        tasks = []
        for bid, block_samples in sorted(samples.items()):
            preds_needed = {s.pred for s in block_samples}
            for pred in sorted(preds_needed):
                try:
                    model.get(bid, pred, 0)
                    continue
                except KeyError:
                    pass
                example = next(
                    s for s in block_samples if s.pred == pred
                )
                tail = [example.entry_prev] if example.entry_prev else []
                tasks.append((bid, pred, tail, example.records))
        if tasks:
            with self.activation():
                artifacts.characterizer.characterize_many(tasks, model)

    def window_doc(self, processor, activity_cache) -> dict:
        """Persistable period-independent window artifacts."""
        return {
            "schema": WindowArtifactIR.SCHEMA,
            "activity": activity_cache.to_doc(),
            "path_registry": (
                processor.control_analyzer.stage_analyzer.registry_doc()
            ),
        }

    def preload_windows(self, processor, activity_cache, doc: dict) -> int:
        """Load a :meth:`window_doc` document; returns entries added."""
        artifact = WindowArtifactIR.from_doc(doc)
        added = activity_cache.preload(artifact.doc["activity"])
        registry = artifact.doc.get("path_registry")
        if registry is not None:
            processor.control_analyzer.stage_analyzer.preload_registry(
                registry
            )
        return added


@REGISTRY.register(
    "dta",
    "kernels",
    description="Vectorized DTS kernels, serial window analysis",
    default=True,
    cache_id="kernels",
)
class KernelsDTABackend(_DTABackendBase):
    def __init__(
        self, window_workers: int = 1, executor: str = "auto"
    ) -> None:
        super().__init__(window_workers=1, executor="local-serial")


@REGISTRY.register(
    "dta",
    "windowpool",
    description="Vectorized DTS kernels + fork-pool window fan-out "
    "(byte-identical to 'kernels')",
    cache_id="kernels",
)
class WindowPoolDTABackend(_DTABackendBase):
    """Same mathematics as ``kernels``; fans per-(block, edge) windows
    across a fork pool, so it shares the kernels cache identity."""


@REGISTRY.register(
    "dta",
    "reference",
    description="Unvectorized reference DTS path (ground truth)",
    cache_id="reference",
)
class ReferenceDTABackend(_DTABackendBase):
    def __init__(
        self, window_workers: int = 1, executor: str = "auto"
    ) -> None:
        super().__init__(window_workers=1, executor="local-serial")

    @contextmanager
    def activation(self):
        from repro.kernels import KernelConfig, configure_kernels

        with configure_kernels(**KernelConfig.named("reference").to_overrides()):
            yield


# --------------------------------------------------------------------- #
# statmin (statistical minimum reduction inside Algorithm 1)
# --------------------------------------------------------------------- #


@REGISTRY.register(
    "statmin",
    "clark",
    description="Pairwise Clark moment-matching reduction",
    default=True,
)
class ClarkStatMinBackend:
    method = "clark"


@REGISTRY.register(
    "statmin",
    "montecarlo",
    description="Fixed-seed correlated-sampling reduction (cross-check)",
)
class MonteCarloStatMinBackend:
    method = "montecarlo"


# --------------------------------------------------------------------- #
# errormodel
# --------------------------------------------------------------------- #


@REGISTRY.register(
    "errormodel",
    "joint",
    description="Joint control+datapath instruction error model (Sec. 5)",
    default=True,
)
class JointErrorModelBackend:
    """Per-block conditional error probabilities from operand samples."""

    def conditionals(
        self, processor, program, cfg, control_model, samples, profile,
        n_data_samples: int, seed: int,
    ) -> dict:
        import numpy as np

        from repro.cfg.marginal import BlockProbabilities
        from repro.core.errormodel import InstructionErrorModel

        error_model = InstructionErrorModel(
            processor, program, cfg, control_model
        )
        conditionals = error_model.all_block_probabilities(
            samples, n_samples=n_data_samples, seed=seed
        )
        if profile is not None:
            # A block whose only execution was cut off by the instruction
            # budget has no complete sample; treat it as error-free (its
            # weight is at most one truncated execution).
            for bid in profile.executed_blocks():
                if bid not in conditionals:
                    n_i = cfg.block(bid).size
                    conditionals[bid] = BlockProbabilities(
                        pc=np.zeros((n_i, n_data_samples)),
                        pe=np.zeros((n_i, n_data_samples)),
                    )
        return conditionals


# --------------------------------------------------------------------- #
# estimate
# --------------------------------------------------------------------- #


@REGISTRY.register(
    "estimate",
    "analytic",
    description="CFG marginal solve + Stein/Chen-Stein bounded mixture (Sec. 6)",
    default=True,
)
class AnalyticEstimateBackend:
    """Marginals + profile -> (lambda, mixture, Stein, Chen–Stein)."""

    def distribution(self, cfg, profile, conditionals):
        from repro.cfg.marginal import MarginalSolver
        from repro.sta.gaussian import Gaussian
        from repro.stats.chen_stein import chen_stein_bound
        from repro.stats.mixture import PoissonGaussianMixture
        from repro.stats.stein import stein_normal_bound

        solver = MarginalSolver(cfg, profile)
        marginals, p_in = solver.solve(conditionals)
        executions = {
            bid: int(profile.block_counts[bid])
            for bid in profile.executed_blocks()
        }
        stein = stein_normal_bound(marginals, executions)
        chen = chen_stein_bound(
            marginals,
            {bid: bp.pe for bid, bp in conditionals.items()},
            p_in,
            executions,
        )
        lam = Gaussian(stein.mean, stein.variance)
        mixture = PoissonGaussianMixture(lam)
        return lam, mixture, stein, chen


# --------------------------------------------------------------------- #
# validate
# --------------------------------------------------------------------- #


@REGISTRY.register(
    "validate",
    "montecarlo",
    description="Brute-force per-chip gate-level measurement (Sec. 7)",
    default=True,
)
class MonteCarloValidateBackend:
    """Constructs the ground-truth validator for a processor."""

    def validator(self, processor, **kwargs):
        from repro.core.montecarlo import MonteCarloValidator

        return MonteCarloValidator(processor, **kwargs)
