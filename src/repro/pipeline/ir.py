"""Typed inter-stage IR: the contracts stages exchange.

Every document that crosses a stage boundary has a frozen dataclass
form here with three guarantees:

* **stable content hash** — :attr:`content_hash` digests the canonical
  document, so two IR values with the same hash are interchangeable as
  stage inputs (this is what the :class:`~repro.pipeline.store.ArtifactStore`
  keys on);
* **``to_doc`` / ``from_doc``** — a lossless JSON document round-trip,
  schema-tagged for the persisted artifact IRs;
* **period awareness** — the control input IR carries the clock period
  explicitly; dropping it (``clock_period=None``) yields the
  period-independent identity used for frequency-sweep reuse.

The module also owns :class:`ProcessorConfig` (moved from
``repro.runner.engine``, which re-exports it): the picklable processor
recipe is the netlist stage's input IR, not an engine detail.

Nothing here imports ``repro.core`` or ``repro.runner`` at module level
— the IR sits below both, so stage implementations, the runner, and the
legacy framework can all depend on it without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.cpu.correction import (
    CorrectionScheme,
    NoCorrection,
    PipelineFlush,
    ReplayHalfFrequency,
)
from repro.netlist.generator import PipelineConfig
from repro.pipeline.store import stable_digest
from repro.variation.process import VariationConfig

__all__ = [
    "CORRECTION_SCHEMES",
    "DEFAULT_FAMILY",
    "ProcessorConfig",
    "ProgramIR",
    "TrainingSpec",
    "ControlInputIR",
    "DatapathInputIR",
    "ControlArtifactIR",
    "WindowArtifactIR",
    "DatapathArtifactIR",
    "TrainingArtifacts",
    "program_fingerprint",
    "control_cache_key",
    "window_cache_key",
    "datapath_cache_key",
]

#: Correction schemes constructible by name (for picklable configs).
CORRECTION_SCHEMES: dict[str, type[CorrectionScheme]] = {
    ReplayHalfFrequency.name: ReplayHalfFrequency,
    PipelineFlush.name: PipelineFlush,
    NoCorrection.name: NoCorrection,
}

#: The default core family name.  Kept as a literal (mirroring
#: ``repro.core.family.DEFAULT_FAMILY``) because the IR sits below
#: ``repro.core`` and must not import it at module level; family
#: validation happens lazily in ``ProcessorConfig.__post_init__``.
DEFAULT_FAMILY = "inorder6"


def program_fingerprint(program) -> str:
    """Content hash of a program: its name plus full disassembly.

    The listing covers every instruction field and label, so two
    programs with the same fingerprint characterize identically.
    """
    blob = f"{program.name}\n{program.listing()}"
    return hashlib.sha256(blob.encode()).hexdigest()


def _config_doc(config) -> dict:
    """A dataclass config as a plain sortable dict."""
    return dataclasses.asdict(config)


# --------------------------------------------------------------------- #
# Netlist stage input: the processor recipe
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ProcessorConfig:
    """A picklable recipe for building a ``ProcessorModel``.

    The input IR of the netlist stage; engines ship this (not the
    multi-megabyte processor object) to pool workers, which rebuild —
    or, under fork, inherit — the processor.  The same fields feed every
    artifact-store key.
    """

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    variation: VariationConfig = field(default_factory=VariationConfig)
    scheme: str = ReplayHalfFrequency.name
    speculation: float = 1.15
    yield_quantile: float = 0.9987
    droop_guardband: float = 1.04
    paths_per_endpoint: int = 12
    core_family: str = DEFAULT_FAMILY

    def __post_init__(self) -> None:
        if self.scheme not in CORRECTION_SCHEMES:
            raise ValueError(
                f"unknown correction scheme {self.scheme!r}; "
                f"known: {sorted(CORRECTION_SCHEMES)}"
            )
        # Lazy import: the registry lives above the IR (repro.core), so
        # validating here must not create a module-level cycle.
        from repro.core.family import get_core_family

        get_core_family(self.core_family)

    def build(self):
        from repro.core.family import get_core_family
        from repro.core.processor import ProcessorModel

        family = get_core_family(self.core_family)
        return ProcessorModel(
            pipeline=family.build_netlist(self.pipeline),
            variation_config=self.variation,
            scheme=CORRECTION_SCHEMES[self.scheme](),
            speculation=self.speculation,
            yield_quantile=self.yield_quantile,
            droop_guardband=self.droop_guardband,
            paths_per_endpoint=self.paths_per_endpoint,
            core_family=family,
        )

    def to_doc(self) -> dict:
        doc = {
            "pipeline": _config_doc(self.pipeline),
            "variation": _config_doc(self.variation),
            "scheme": self.scheme,
            "speculation": repr(self.speculation),
            "yield_quantile": repr(self.yield_quantile),
            "droop_guardband": repr(self.droop_guardband),
            "paths_per_endpoint": self.paths_per_endpoint,
        }
        # Omit-on-default keeps every pre-family digest (and therefore
        # every persisted store key and resolved seed) byte-identical.
        if self.core_family != DEFAULT_FAMILY:
            doc["core_family"] = self.core_family
        return doc

    def digest(self) -> str:
        """Identity of this configuration (worker-side registry key)."""
        return stable_digest(self.to_doc())

    @property
    def content_hash(self) -> str:
        return self.digest()


# --------------------------------------------------------------------- #
# Shared input IRs
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ProgramIR:
    """A program's identity as a stage input: name + content fingerprint."""

    name: str
    fingerprint: str

    @classmethod
    def from_program(cls, program) -> "ProgramIR":
        return cls(name=program.name, fingerprint=program_fingerprint(program))

    def to_doc(self) -> dict:
        return {"name": self.name, "fingerprint": self.fingerprint}

    @classmethod
    def from_doc(cls, doc: dict) -> "ProgramIR":
        return cls(name=doc["name"], fingerprint=doc["fingerprint"])

    @property
    def content_hash(self) -> str:
        return self.fingerprint


@dataclass(frozen=True)
class TrainingSpec:
    """What the training execution ran: dataset scale, seed, and budget."""

    scale: str = "small"
    seed: int | None = None
    instructions: int = 2_000_000

    def to_doc(self) -> dict:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "instructions": self.instructions,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TrainingSpec":
        return cls(
            scale=doc["scale"],
            seed=doc["seed"],
            instructions=int(doc["instructions"]),
        )

    @property
    def content_hash(self) -> str:
        return stable_digest(self.to_doc())


@dataclass(frozen=True)
class ControlInputIR:
    """Input contract of the control-DTA stage.

    ``clock_period=None`` is the *period-independent* identity — the
    same characterization inputs minus the operating point — used to key
    the window-artifact stream that a frequency sweep reuses.
    """

    program: ProgramIR
    pipeline: dict
    variation: dict
    scheme: str
    paths_per_endpoint: int
    spec: TrainingSpec
    clock_period: float | None = None
    core_family: str = DEFAULT_FAMILY

    @classmethod
    def build(
        cls,
        program,
        config: ProcessorConfig,
        spec: TrainingSpec,
        clock_period: float | None = None,
    ) -> "ControlInputIR":
        return cls(
            program=ProgramIR.from_program(program),
            pipeline=_config_doc(config.pipeline),
            variation=_config_doc(config.variation),
            scheme=config.scheme,
            paths_per_endpoint=config.paths_per_endpoint,
            spec=spec,
            clock_period=clock_period,
            core_family=config.core_family,
        )

    def period_independent(self) -> "ControlInputIR":
        """This input with the operating point dropped."""
        return dataclasses.replace(self, clock_period=None)

    def to_doc(self) -> dict:
        doc = {
            "kind": "control/1" if self.clock_period is not None else "windows/1",
            "program": self.program.fingerprint,
            "pipeline": self.pipeline,
            "variation": self.variation,
            "scheme": self.scheme,
            "paths_per_endpoint": self.paths_per_endpoint,
            "train_scale": self.spec.scale,
            "train_seed": self.spec.seed,
            "train_instructions": self.spec.instructions,
        }
        if self.clock_period is not None:
            # repr() keeps full float precision; a different period is a
            # different (and incompatible) characterization.
            doc["clock_period"] = repr(float(self.clock_period))
        # Omit-on-default: in-order keys stay byte-identical to the
        # pre-family store; other families can never collide with them.
        if self.core_family != DEFAULT_FAMILY:
            doc["core_family"] = self.core_family
        return doc

    @property
    def content_hash(self) -> str:
        return stable_digest(self.to_doc())


@dataclass(frozen=True)
class DatapathInputIR:
    """Input contract of the datapath-training stage (period-independent)."""

    pipeline: dict
    variation: dict
    paths_per_endpoint: int
    core_family: str = DEFAULT_FAMILY

    @classmethod
    def build(cls, config: ProcessorConfig) -> "DatapathInputIR":
        return cls(
            pipeline=_config_doc(config.pipeline),
            variation=_config_doc(config.variation),
            paths_per_endpoint=config.paths_per_endpoint,
            core_family=config.core_family,
        )

    def to_doc(self) -> dict:
        doc = {
            "kind": "datapath/1",
            "pipeline": self.pipeline,
            "variation": self.variation,
            "paths_per_endpoint": self.paths_per_endpoint,
        }
        if self.core_family != DEFAULT_FAMILY:
            doc["core_family"] = self.core_family
        return doc

    @property
    def content_hash(self) -> str:
        return stable_digest(self.to_doc())


# --------------------------------------------------------------------- #
# Legacy key functions (re-exported by repro.runner.cache)
# --------------------------------------------------------------------- #


def control_cache_key(
    program,
    *,
    pipeline_config,
    variation_config,
    scheme_name: str,
    clock_period: float,
    paths_per_endpoint: int,
    train_scale: str,
    train_seed: int | None,
    train_instructions: int,
) -> str:
    """Cache key for a characterized control timing model."""
    return ControlInputIR(
        program=ProgramIR.from_program(program),
        pipeline=_config_doc(pipeline_config),
        variation=_config_doc(variation_config),
        scheme=scheme_name,
        paths_per_endpoint=paths_per_endpoint,
        spec=TrainingSpec(train_scale, train_seed, train_instructions),
        clock_period=float(clock_period),
    ).content_hash


def window_cache_key(
    program,
    *,
    pipeline_config,
    variation_config,
    scheme_name: str,
    paths_per_endpoint: int,
    train_scale: str,
    train_seed: int | None,
    train_instructions: int,
) -> str:
    """Cache key for period-independent window artifacts.

    Everything in the control key *except* the clock period: activity
    traces and path moments do not depend on it, so one entry serves
    every operating point of a frequency sweep.
    """
    return ControlInputIR(
        program=ProgramIR.from_program(program),
        pipeline=_config_doc(pipeline_config),
        variation=_config_doc(variation_config),
        scheme=scheme_name,
        paths_per_endpoint=paths_per_endpoint,
        spec=TrainingSpec(train_scale, train_seed, train_instructions),
        clock_period=None,
    ).content_hash


def datapath_cache_key(
    *,
    pipeline_config,
    variation_config,
    paths_per_endpoint: int,
) -> str:
    """Cache key for the (period-independent) datapath timing model."""
    return DatapathInputIR(
        pipeline=_config_doc(pipeline_config),
        variation=_config_doc(variation_config),
        paths_per_endpoint=paths_per_endpoint,
    ).content_hash


# --------------------------------------------------------------------- #
# Output artifact IRs
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _ArtifactIR:
    """A schema-tagged stage output document.

    Subclasses pin :attr:`SCHEMA`; :meth:`from_doc` refuses documents
    carrying any other tag, so a mis-filed store entry fails loudly at
    the stage boundary instead of corrupting downstream math.
    """

    doc: dict

    SCHEMA = ""

    def __post_init__(self) -> None:
        if self.doc.get("schema") != self.SCHEMA:
            raise ValueError(
                f"unsupported artifact schema {self.doc.get('schema')!r}; "
                f"expected {self.SCHEMA!r}"
            )

    def to_doc(self) -> dict:
        return self.doc

    @classmethod
    def from_doc(cls, doc: dict) -> "_ArtifactIR":
        return cls(doc=doc)

    @property
    def content_hash(self) -> str:
        return stable_digest(self.doc)


class ControlArtifactIR(_ArtifactIR):
    """Persisted output of the control-DTA stage (period-dependent)."""

    SCHEMA = "repro.training-artifacts/1"


class WindowArtifactIR(_ArtifactIR):
    """Persisted period-independent window artifacts of the DTA stage."""

    SCHEMA = "repro.window-artifacts/1"


class DatapathArtifactIR(_ArtifactIR):
    """Persisted output of the datapath-training stage."""

    SCHEMA = "repro.datapath-model/1"


# --------------------------------------------------------------------- #
# In-memory training output (CFG + model + characterizer)
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class TrainingArtifacts:
    """Everything the training phase produces for one program.

    The in-memory output of the DTA stage: its persistable projection is
    :meth:`to_doc` (a :class:`ControlArtifactIR` document — the CFG and
    characterizer are deterministic functions of the program and
    processor, so only the characterized timing is stored).

    ``clock_period`` records the speculative clock period (ps) the
    control model was characterized at; loading refuses artifacts trained
    at a different period, since the characterized slack distributions
    are meaningless off-period.
    """

    cfg: object
    control_model: object
    characterizer: object
    training_seconds: float
    training_instructions: int
    clock_period: float | None = None
    #: Kernel-layer counters accumulated during training (transient
    #: telemetry — not persisted; ``None`` for loaded artifacts).
    kernel_stats: dict | None = None

    def to_doc(self) -> dict:
        """The persistable document behind :meth:`save`."""
        return {
            "schema": ControlArtifactIR.SCHEMA,
            "control_model": self.control_model.to_json(),
            "training_seconds": self.training_seconds,
            "training_instructions": self.training_instructions,
            "clock_period": self.clock_period,
        }

    def ir(self) -> ControlArtifactIR:
        """The typed persisted form of these artifacts."""
        return ControlArtifactIR(self.to_doc())

    def save(self, path) -> None:
        """Persist the trained control model (JSON).

        Reload with ``ErrorRateEstimator.load_artifacts`` or
        ``EstimationPipeline.load_artifacts``.
        """
        with open(path, "w") as handle:
            json.dump(self.to_doc(), handle)


def timestamp() -> float:
    """Wall-clock seconds (kept here so stages share one clock source)."""
    return time.perf_counter()
