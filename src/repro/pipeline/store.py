"""One content-addressed artifact store for every pipeline stage.

Before this module existed the repository had three caching mechanisms,
each with its own keying and persistence: the runner's ``ArtifactCache``
(control / datapath / windows JSON documents on disk), the
``ActivityCache``'s ``to_doc``/``preload`` round-trip, and the stage
analyzer's path-moment ``registry_doc``.  The :class:`ArtifactStore`
collapses their *persistence* behind one contract:

* every entry is addressed by ``(stage name, backend cache id, input IR
  content hash)``, digested into a single SHA-256 key;
* entries are JSON documents living at
  ``<root>/<stage>/<key[:2]>/<key>.json`` (or in memory when no root is
  given, which is what gives every pipeline memoization for free);
* writes are atomic (temp file + rename) so concurrent pool workers can
  share a directory without locking;
* a corrupt or truncated entry is a *miss*: it is deleted and the stage
  recomputes, instead of poisoning the run with a parse error.

Period-independent stages (datapath training, window artifacts) simply
omit the clock period from their input IR, so one entry serves every
operating point of a frequency sweep — the same hierarchical-reuse
structure FATE uses between its gate-level and high-level models.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = ["ArtifactStore", "stable_digest"]


def stable_digest(doc) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``doc``."""
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ArtifactStore:
    """Content-addressed JSON artifact documents, one namespace per stage.

    Args:
        root: Directory for the on-disk store, or ``None`` for a
            process-local in-memory store (same contract, no
            persistence) — the default every
            :class:`~repro.pipeline.pipeline.EstimationPipeline` gets so
            stages are memoized even without a cache directory.
    """

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else None
        self._memory: dict[tuple[str, str], dict] = {}
        #: Per-stage telemetry: ``{stage: {"hits": n, "misses": n,
        #: "puts": n, "corrupt": n}}`` accumulated over this store's
        #: lifetime (the ``pipeline inspect`` / warm-run evidence).
        self.stats: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #

    @staticmethod
    def compose_key(stage: str, backend: str, input_hash: str) -> str:
        """The store key for one (stage, backend, input IR hash) triple."""
        return stable_digest(
            {"stage": stage, "backend": backend, "input": input_hash}
        )

    # ------------------------------------------------------------------ #
    # Stage-level API
    # ------------------------------------------------------------------ #

    def get(self, stage: str, backend: str, input_hash: str) -> dict | None:
        """The stored stage output document, or ``None`` on a miss."""
        return self.get_entry(stage, self.compose_key(stage, backend, input_hash))

    def put(self, stage: str, backend: str, input_hash: str, doc: dict):
        """Store one stage output document (atomic on disk)."""
        return self.put_entry(stage, self.compose_key(stage, backend, input_hash), doc)

    # ------------------------------------------------------------------ #
    # Raw entry API (shared with the legacy ArtifactCache surface)
    # ------------------------------------------------------------------ #

    def path_for(self, namespace: str, key: str) -> Path:
        if self.root is None:
            raise ValueError("in-memory ArtifactStore has no paths")
        return self.root / namespace / key[:2] / f"{key}.json"

    def get_entry(self, namespace: str, key: str) -> dict | None:
        """Fetch by explicit key; corrupt entries are deleted and miss."""
        counters = self._counters(namespace)
        if self.root is None:
            doc = self._memory.get((namespace, key))
            counters["hits" if doc is not None else "misses"] += 1
            return doc
        path = self.path_for(namespace, key)
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except OSError:
            counters["misses"] += 1
            return None
        except ValueError:
            # Truncated write or garbage: treat as a miss and remove the
            # entry so the recompute's put() repopulates it cleanly.
            counters["misses"] += 1
            counters["corrupt"] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        counters["hits"] += 1
        return doc

    def put_entry(self, namespace: str, key: str, doc: dict):
        """Store by explicit key; concurrent writers are safe."""
        self._counters(namespace)["puts"] += 1
        if self.root is None:
            self._memory[(namespace, key)] = doc
            return None
        path = self.path_for(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, namespace_key: tuple[str, str]) -> bool:
        namespace, key = namespace_key
        if self.root is None:
            return (namespace, key) in self._memory
        return self.path_for(namespace, key).exists()

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def entries(self) -> list:
        """All stored artifacts (paths on disk, (namespace, key) in memory)."""
        if self.root is None:
            return sorted(self._memory)
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/??/*.json"))

    def entry_counts(self) -> dict[str, int]:
        """Stored entries per namespace (for ``pipeline inspect``)."""
        counts: dict[str, int] = {}
        if self.root is None:
            for namespace, _key in self._memory:
                counts[namespace] = counts.get(namespace, 0) + 1
            return counts
        for path in self.entries():
            namespace = path.parent.parent.name
            counts[namespace] = counts.get(namespace, 0) + 1
        return counts

    def describe(self) -> dict:
        """Location + per-stage entry counts and hit/miss telemetry."""
        return {
            "location": str(self.root) if self.root is not None else "memory",
            "entries": self.entry_counts(),
            "stats": {k: dict(v) for k, v in sorted(self.stats.items())},
        }

    def _counters(self, namespace: str) -> dict[str, int]:
        return self.stats.setdefault(
            namespace, {"hits": 0, "misses": 0, "puts": 0, "corrupt": 0}
        )
