"""One content-addressed artifact store for every pipeline stage.

Before this module existed the repository had three caching mechanisms,
each with its own keying and persistence: the runner's ``ArtifactCache``
(control / datapath / windows JSON documents on disk), the
``ActivityCache``'s ``to_doc``/``preload`` round-trip, and the stage
analyzer's path-moment ``registry_doc``.  The :class:`ArtifactStore`
collapses their *persistence* behind one contract:

* every entry is addressed by ``(stage name, backend cache id, input IR
  content hash)``, digested into a single SHA-256 key;
* entries are JSON documents living at
  ``<root>/<stage>/<key[:2]>/<key>.json`` (or in memory when no root is
  given, which is what gives every pipeline memoization for free);
* writes are durable and atomic — the temp file is fsynced before the
  rename and the directory is fsynced after it — so a ``SIGKILL``ed
  writer can never leave a truncated artifact behind, and concurrent
  writers (pool workers, service tenants) share a directory without
  locking;
* a corrupt entry is a *miss*: it is deleted and the stage recomputes,
  instead of poisoning the run with a parse error;
* an optional byte budget (``max_bytes``) turns the store into an LRU
  cache: recency is tracked in a small SQLite index (``index.db``,
  WAL-mode — safe across processes, in the spirit of DAVOS's SQL-backed
  report store) and the least-recently-used entries are evicted when a
  write pushes the total over budget.

Period-independent stages (datapath training, window artifacts) simply
omit the clock period from their input IR, so one entry serves every
operating point of a frequency sweep — the same hierarchical-reuse
structure FATE uses between its gate-level and high-level models.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import tempfile
import threading
import time
from pathlib import Path

__all__ = ["ArtifactStore", "stable_digest"]

#: Environment variable consulted for a default store byte budget.
BUDGET_ENV = "REPRO_STORE_BUDGET"


def stable_digest(doc) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``doc``."""
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (durability of the rename)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class ArtifactStore:
    """Content-addressed JSON artifact documents, one namespace per stage.

    Args:
        root: Directory for the on-disk store, or ``None`` for a
            process-local in-memory store (same contract, no
            persistence) — the default every
            :class:`~repro.pipeline.pipeline.EstimationPipeline` gets so
            stages are memoized even without a cache directory.
        max_bytes: LRU eviction budget in bytes of stored JSON; ``None``
            (the default) reads the :data:`BUDGET_ENV` environment
            variable and falls back to unbounded.  Applies to both
            backings.
    """

    def __init__(self, root=None, max_bytes: int | None = None) -> None:
        self.root = Path(root) if root is not None else None
        if max_bytes is None:
            env = os.environ.get(BUDGET_ENV)
            max_bytes = int(env) if env else None
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_bytes = max_bytes
        self._memory: dict[tuple[str, str], dict] = {}
        self._memory_sizes: dict[tuple[str, str], int] = {}
        self._index_conn: sqlite3.Connection | None = None
        self._lock = threading.Lock()
        #: Per-stage telemetry: ``{stage: {"hits": n, "misses": n,
        #: "puts": n, "corrupt": n}}`` accumulated over this store's
        #: lifetime (the ``pipeline inspect`` / warm-run evidence).
        self.stats: dict[str, dict[str, int]] = {}
        #: Entries/bytes removed by LRU eviction over this store's
        #: lifetime.
        self.evicted_entries: int = 0
        self.evicted_bytes: int = 0

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #

    @staticmethod
    def compose_key(stage: str, backend: str, input_hash: str) -> str:
        """The store key for one (stage, backend, input IR hash) triple."""
        return stable_digest(
            {"stage": stage, "backend": backend, "input": input_hash}
        )

    # ------------------------------------------------------------------ #
    # Stage-level API
    # ------------------------------------------------------------------ #

    def get(self, stage: str, backend: str, input_hash: str) -> dict | None:
        """The stored stage output document, or ``None`` on a miss."""
        return self.get_entry(stage, self.compose_key(stage, backend, input_hash))

    def put(self, stage: str, backend: str, input_hash: str, doc: dict):
        """Store one stage output document (atomic on disk)."""
        return self.put_entry(stage, self.compose_key(stage, backend, input_hash), doc)

    # ------------------------------------------------------------------ #
    # Raw entry API (shared with the legacy ArtifactCache surface)
    # ------------------------------------------------------------------ #

    def path_for(self, namespace: str, key: str) -> Path:
        if self.root is None:
            raise ValueError("in-memory ArtifactStore has no paths")
        return self.root / namespace / key[:2] / f"{key}.json"

    def get_entry(self, namespace: str, key: str) -> dict | None:
        """Fetch by explicit key; corrupt entries are deleted and miss."""
        counters = self._counters(namespace)
        if self.root is None:
            doc = self._memory.get((namespace, key))
            if doc is not None:
                # Re-insert to mark recency (dicts preserve order).
                self._memory[(namespace, key)] = self._memory.pop(
                    (namespace, key)
                )
                counters["hits"] += 1
            else:
                counters["misses"] += 1
            return doc
        path = self.path_for(namespace, key)
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except OSError:
            counters["misses"] += 1
            self._index_forget(namespace, key)
            return None
        except ValueError:
            # Truncated write or garbage: treat as a miss and remove the
            # entry so the recompute's put() repopulates it cleanly.
            counters["misses"] += 1
            counters["corrupt"] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            self._index_forget(namespace, key)
            return None
        counters["hits"] += 1
        self._index_touch(namespace, key, path)
        return doc

    def put_entry(self, namespace: str, key: str, doc: dict):
        """Store by explicit key; durable, concurrent writers are safe."""
        self._counters(namespace)["puts"] += 1
        blob = json.dumps(doc)
        if self.root is None:
            self._memory.pop((namespace, key), None)
            self._memory[(namespace, key)] = doc
            self._memory_sizes[(namespace, key)] = len(blob)
            self._evict(protect=(namespace, key))
            return None
        path = self.path_for(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._index_record(namespace, key, len(blob))
        self._evict(protect=(namespace, key))
        return path

    def __contains__(self, namespace_key: tuple[str, str]) -> bool:
        namespace, key = namespace_key
        if self.root is None:
            return (namespace, key) in self._memory
        return self.path_for(namespace, key).exists()

    # ------------------------------------------------------------------ #
    # LRU index + eviction
    # ------------------------------------------------------------------ #

    def _index(self) -> sqlite3.Connection:
        """The recency/size index (lazily opened, WAL, cross-process)."""
        if self._index_conn is None:
            assert self.root is not None
            self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.root / "index.db",
                timeout=30.0,
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " namespace TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " bytes INTEGER NOT NULL,"
                " accessed REAL NOT NULL,"
                " PRIMARY KEY (namespace, key))"
            )
            conn.commit()
            self._index_conn = conn
        return self._index_conn

    def _index_record(self, namespace: str, key: str, nbytes: int) -> None:
        with self._lock:
            conn = self._index()
            conn.execute(
                "INSERT OR REPLACE INTO entries (namespace, key, bytes,"
                " accessed) VALUES (?, ?, ?, ?)",
                (namespace, key, nbytes, time.time()),
            )
            conn.commit()

    def _index_touch(self, namespace: str, key: str, path: Path) -> None:
        with self._lock:
            conn = self._index()
            updated = conn.execute(
                "UPDATE entries SET accessed = ? WHERE namespace = ?"
                " AND key = ?",
                (time.time(), namespace, key),
            ).rowcount
            if not updated:
                # File exists but predates the index (or another process
                # evicted the row): reconcile from the filesystem.
                try:
                    nbytes = path.stat().st_size
                except OSError:
                    nbytes = 0
                conn.execute(
                    "INSERT OR REPLACE INTO entries (namespace, key,"
                    " bytes, accessed) VALUES (?, ?, ?, ?)",
                    (namespace, key, nbytes, time.time()),
                )
            conn.commit()

    def _index_forget(self, namespace: str, key: str) -> None:
        with self._lock:
            conn = self._index()
            conn.execute(
                "DELETE FROM entries WHERE namespace = ? AND key = ?",
                (namespace, key),
            )
            conn.commit()

    def total_bytes(self) -> int:
        """Stored JSON bytes (index-tracked on disk, exact in memory)."""
        if self.root is None:
            return sum(self._memory_sizes.values())
        with self._lock:
            row = self._index().execute(
                "SELECT COALESCE(SUM(bytes), 0) FROM entries"
            ).fetchone()
        return int(row[0])

    def _evict(self, protect: tuple[str, str]) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.

        The just-written entry is protected so a put always makes
        progress even when it alone exceeds the budget.
        """
        if self.max_bytes is None:
            return
        if self.root is None:
            total = sum(self._memory_sizes.values())
            for ns_key in list(self._memory):
                if total <= self.max_bytes:
                    break
                if ns_key == protect:
                    continue
                self._memory.pop(ns_key, None)
                size = self._memory_sizes.pop(ns_key, 0)
                total -= size
                self.evicted_entries += 1
                self.evicted_bytes += size
            return
        while True:
            with self._lock:
                conn = self._index()
                total = int(conn.execute(
                    "SELECT COALESCE(SUM(bytes), 0) FROM entries"
                ).fetchone()[0])
                if total <= self.max_bytes:
                    return
                victim = conn.execute(
                    "SELECT namespace, key, bytes FROM entries"
                    " WHERE NOT (namespace = ? AND key = ?)"
                    " ORDER BY accessed, namespace, key LIMIT 1",
                    protect,
                ).fetchone()
                if victim is None:
                    return
                namespace, key, nbytes = victim
                conn.execute(
                    "DELETE FROM entries WHERE namespace = ? AND key = ?",
                    (namespace, key),
                )
                conn.commit()
            try:
                os.unlink(self.path_for(namespace, key))
            except OSError:
                pass
            self.evicted_entries += 1
            self.evicted_bytes += int(nbytes)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def entries(self) -> list:
        """All stored artifacts (paths on disk, (namespace, key) in memory)."""
        if self.root is None:
            return sorted(self._memory)
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/??/*.json"))

    def entry_counts(self) -> dict[str, int]:
        """Stored entries per namespace (for ``pipeline inspect``)."""
        counts: dict[str, int] = {}
        if self.root is None:
            for namespace, _key in self._memory:
                counts[namespace] = counts.get(namespace, 0) + 1
            return counts
        for path in self.entries():
            namespace = path.parent.parent.name
            counts[namespace] = counts.get(namespace, 0) + 1
        return counts

    def describe(self) -> dict:
        """Location, budget, per-stage entry counts, and telemetry."""
        return {
            "location": str(self.root) if self.root is not None else "memory",
            "entries": self.entry_counts(),
            "bytes": self.total_bytes(),
            "budget_bytes": self.max_bytes,
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "stats": {k: dict(v) for k, v in sorted(self.stats.items())},
        }

    def close(self) -> None:
        """Close the recency index connection (no-op when unopened)."""
        if self._index_conn is not None:
            self._index_conn.close()
            self._index_conn = None

    def _counters(self, namespace: str) -> dict[str, int]:
        return self.stats.setdefault(
            namespace, {"hits": 0, "misses": 0, "puts": 0, "corrupt": 0}
        )
