"""Vectorized operating-point grid: batch-evaluate a period sweep.

A frequency sweep asks the same question — "what is this program's
error-rate distribution?" — at many operating points of one processor
configuration.  Run point-by-point, almost everything is recomputed N
times even though only the clock period changed: the training and
evaluation functional simulations, window scheduling/encoding/logic
simulation, and the activation bookkeeping of Algorithm 1 are all
period-independent.  The grid evaluator runs each of those once and
fans out only the genuinely period-dependent tail:

* one training functional run + one window characterization sweep
  (:meth:`~repro.pipeline.stages._DTABackendBase.train_grid`), with the
  DTS evaluation batched along the period axis down to the Clark
  reductions (:func:`repro.sta.ssta.statistical_min_grid`);
* one evaluation functional run
  (:meth:`~repro.pipeline.pipeline.EstimationPipeline.collect_evaluation`)
  feeding every point's error model;
* per point: on-demand characterization, the data-variation error
  model (whose seed folds in the operating point), and the statistical
  estimate.

Every per-point control artifact is persisted under the *same* store
key the scalar flow would use, so a later single-point job hits the
grid's cache — and a grid run over warm points is served from the
store without retraining.  The resulting reports are byte-identical
(``to_json(include_timing=False)``) to the per-point loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.kernels import kernel_stats
from repro.pipeline.ir import ControlInputIR, DatapathInputIR, TrainingSpec
from repro.pipeline.registry import REGISTRY, use_backends
from repro.pipeline.stages import AnalyticEstimateBackend
from repro.pipeline.store import stable_digest

__all__ = [
    "GridRequest",
    "GridResult",
    "GridEstimateBackend",
    "execute_grid",
]


@dataclass(frozen=True)
class GridRequest:
    """Typed IR for one batched period sweep.

    The identity splits one list of
    :class:`~repro.core.request.EstimationRequest` jobs into the shared
    ``base`` (everything the points have in common: workload, dataset
    pair, budgets, reservoir) and the ``speculations`` axis.  Requests
    differing in anything but the operating point are *not* a grid —
    :meth:`build` rejects them so callers fall back to the scalar flow.
    """

    SCHEMA = "repro.grid-request/1"

    base: tuple
    speculations: tuple

    @classmethod
    def base_identity(cls, request) -> tuple:
        """The request's identity minus the operating point."""
        doc = request.identity_doc()
        doc.pop("speculation", None)
        return tuple(sorted(doc.items()))

    @classmethod
    def build(cls, requests) -> "GridRequest":
        if not requests:
            raise ValueError("a grid needs at least one request")
        base = cls.base_identity(requests[0])
        for request in requests[1:]:
            if cls.base_identity(request) != base:
                raise ValueError(
                    "grid requests must be identical up to speculation; "
                    f"{request.describe()!r} diverges from "
                    f"{requests[0].describe()!r}"
                )
        return cls(
            base=base,
            speculations=tuple(r.speculation for r in requests),
        )

    def to_doc(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "base": {k: v for k, v in self.base},
            "speculations": list(self.speculations),
        }

    @property
    def content_hash(self) -> str:
        return stable_digest(self.to_doc())


@dataclass(slots=True)
class GridResult:
    """Outcome of one batched grid pass.

    ``results`` holds one
    :class:`~repro.pipeline.pipeline.PipelineResult` per request, in
    request order — each indistinguishable (report-wise) from a scalar
    :meth:`~repro.pipeline.pipeline.EstimationPipeline.execute` call.
    The telemetry counts what the batching avoided.
    """

    SCHEMA = "repro.grid-result/1"

    request: GridRequest
    results: list = field(default_factory=list)
    train_sims_skipped: int = 0
    eval_sims_skipped: int = 0
    control_cache_hits: int = 0
    kernel_delta: dict = field(default_factory=dict)

    def to_doc(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "request": self.request.to_doc(),
            "reports": [r.report.to_json() for r in self.results],
            "telemetry": self.telemetry(),
        }

    def telemetry(self) -> dict:
        return {
            "points": len(self.results),
            "train_sims_skipped": self.train_sims_skipped,
            "eval_sims_skipped": self.eval_sims_skipped,
            "control_cache_hits": self.control_cache_hits,
            "grid_points": self.kernel_delta.get("grid_points", 0),
            "grid_clark_reductions": self.kernel_delta.get(
                "grid_clark_reductions", 0
            ),
            "grid_reuse_hits": self.kernel_delta.get("grid_reuse_hits", 0),
        }


@REGISTRY.register(
    "estimate",
    "grid",
    description="Analytic estimate + batched operating-point grid evaluation",
    cache_id="analytic",
)
class GridEstimateBackend(AnalyticEstimateBackend):
    """The analytic estimate extended with the grid evaluator.

    Per-point mathematics are inherited unchanged (hence the shared
    ``analytic`` cache identity); the backend only adds the batched
    entry point used by
    :meth:`~repro.pipeline.pipeline.EstimationPipeline.execute_grid`.
    """

    def execute_grid(self, pipeline, requests) -> GridResult:
        return execute_grid(pipeline, requests)


def execute_grid(pipeline, requests) -> GridResult:
    """Run a homogeneous request batch through the batched grid flow.

    Args:
        pipeline: The base
            :class:`~repro.pipeline.pipeline.EstimationPipeline`; every
            point runs on a derived sibling sharing its store, activity
            cache, and analyzer.
        requests: :class:`~repro.core.request.EstimationRequest` jobs
            identical up to ``speculation``.

    Returns:
        A :class:`GridResult` whose per-point reports are
        byte-identical to scalar ``pipeline.execute`` calls.
    """
    from repro.pipeline.pipeline import (
        EstimationPipeline,
        PipelineResult,
        StageEvent,
    )

    grid_request = GridRequest.build(requests)
    if pipeline.plan.get("dta") == "reference":
        # The reference path exists to stay unvectorized; run it scalar.
        results = [pipeline.execute(r) for r in requests]
        return GridResult(request=grid_request, results=results)

    stats = kernel_stats()
    kernels_before = stats.snapshot()
    workload = requests[0].resolve_workload()
    program, train_setup, train_budget = workload.run_spec(
        requests[0].train_scale, seed=requests[0].train_seed
    )
    train_instructions = requests[0].train_instructions or train_budget
    spec = TrainingSpec(
        scale=requests[0].train_scale,
        seed=requests[0].train_seed,
        instructions=train_instructions,
    )
    use_store = pipeline.store is not None and pipeline.config is not None
    dta_info = REGISTRY.get("dta", pipeline.plan["dta"])

    pipes = [pipeline.pipeline_for(r.speculation) for r in requests]
    events: list[list[StageEvent]] = [[] for _ in requests]

    # --- netlist + datapath (per point; the store key is period- ------ #
    # independent, so every point past the first is a hit) ------------- #
    datapath_hits = []
    for i, pipe in enumerate(pipes):
        t0 = time.perf_counter()
        provided = pipe._processor is not None
        processor = pipe.processor
        events[i].append(
            StageEvent(
                "netlist",
                pipeline.plan["netlist"],
                "provided" if provided else "computed",
                time.perf_counter() - t0,
            )
        )
        t0 = time.perf_counter()
        if use_store:
            datapath_key = pipeline.store.compose_key(
                "datapath",
                REGISTRY.get("datapath", pipeline.plan["datapath"]).cache_id,
                DatapathInputIR.build(pipeline.config).content_hash,
            )
            hit = pipe._datapath.ensure(
                processor, key=datapath_key, store=pipeline.store
            )
        else:
            hit = pipe._datapath.ensure(processor)
        datapath_hits.append(hit)
        events[i].append(
            StageEvent(
                "datapath",
                pipeline.plan["datapath"],
                "hit" if hit else "computed",
                time.perf_counter() - t0,
            )
        )

    # --- windows (period-independent: fetch + preload once) ----------- #
    windows_preloaded = None
    windows_key = None
    if use_store:
        t0 = time.perf_counter()
        base_ir = ControlInputIR.build(
            program, pipeline.config, spec,
            clock_period=pipes[0].processor.clock_period,
        )
        windows_key = pipeline.store.compose_key(
            "dta",
            dta_info.cache_id,
            base_ir.period_independent().content_hash,
        )
        windows_doc = pipeline.store.get_entry("windows", windows_key)
        if windows_doc is not None:
            windows_preloaded = pipes[0].preload_windows(windows_doc)
            seconds = time.perf_counter() - t0
            for ev in events:
                ev.append(
                    StageEvent(
                        "windows", pipeline.plan["dta"], "hit", seconds
                    )
                )

    # --- control artifacts: store-served points + one batched train --- #
    artifacts: list = [None] * len(requests)
    cache_hits = [False] * len(requests)
    control_keys: list = [None] * len(requests)
    train_seconds = [0.0] * len(requests)
    with use_backends(**pipeline.plan):
        if use_store:
            for i, (request, pipe) in enumerate(zip(requests, pipes)):
                t0 = time.perf_counter()
                control_ir = ControlInputIR.build(
                    program, pipeline.config, spec,
                    clock_period=pipe.processor.clock_period,
                )
                control_keys[i] = pipeline.store.compose_key(
                    "dta", dta_info.cache_id, control_ir.content_hash
                )
                doc = pipeline.store.get_entry("control", control_keys[i])
                if doc is not None:
                    artifacts[i] = pipe.artifacts_from_doc(program, doc)
                    cache_hits[i] = True
                    stats.grid_reuse_hits += 1
                train_seconds[i] = time.perf_counter() - t0
        cold = [i for i in range(len(requests)) if artifacts[i] is None]
        # Identical operating points are identical computations: train
        # one representative per distinct point and share its artifact
        # with the duplicates (repeated sweep points, or several
        # coalesced jobs asking for the same point).
        leader_of: dict = {}
        train_idx: list[int] = []
        duplicates: list[tuple[int, int]] = []
        for i in cold:
            point = (
                control_keys[i] if use_store else requests[i].speculation
            )
            if point in leader_of:
                duplicates.append((i, leader_of[point]))
            else:
                leader_of[point] = i
                train_idx.append(i)
        if train_idx:
            t0 = time.perf_counter()
            trained = pipeline._dta.train_grid(
                [pipes[i].processor for i in train_idx],
                program,
                pipeline.activity_cache,
                setup=train_setup,
                max_instructions=train_instructions,
            )
            batch_seconds = time.perf_counter() - t0
            for i, artifact in zip(train_idx, trained):
                artifacts[i] = artifact
                train_seconds[i] += batch_seconds
                if use_store:
                    pipeline.store.put_entry(
                        "control", control_keys[i], artifact.to_doc()
                    )
            for i, leader in duplicates:
                artifacts[i] = artifacts[leader]
                train_seconds[i] += batch_seconds
                stats.grid_reuse_hits += 1
    for i in range(len(requests)):
        events[i].append(
            StageEvent(
                "dta",
                pipeline.plan["dta"],
                "hit" if cache_hits[i] else "computed",
                train_seconds[i],
            )
        )

    # --- one shared evaluation run ------------------------------------ #
    _, eval_setup, eval_budget = workload.run_spec(
        requests[0].eval_scale, seed=requests[0].eval_seed
    )
    profile, samples = EstimationPipeline.collect_evaluation(
        program,
        artifacts[0].cfg,
        setup=eval_setup,
        max_instructions=requests[0].max_instructions or eval_budget,
        reservoir_size=requests[0].reservoir_size,
    )

    # --- per-point period-dependent tail ------------------------------ #
    results: list[PipelineResult] = []
    for i, (request, pipe) in enumerate(zip(requests, pipes)):
        seed = request.resolved_seed()
        t1 = time.perf_counter()
        report = pipe.estimate_collected(
            program, artifacts[i], profile, samples, seed=seed
        )
        stats.grid_points += 1
        estimate_seconds = time.perf_counter() - t1
        events[i].append(
            StageEvent("estimate", "grid", "computed", estimate_seconds)
        )
        results.append(
            PipelineResult(
                report=report,
                events=events[i],
                cache_hit=cache_hits[i],
                windows_preloaded=windows_preloaded,
                seed=seed,
                train_seconds=train_seconds[i],
                estimate_seconds=estimate_seconds,
                processor=pipe.processor,
            )
        )
    if use_store and pipeline.activity_cache.dirty:
        pipeline.store.put_entry(
            "windows", windows_key, pipeline.window_doc()
        )
        for i in range(len(requests)):
            results[i].events.append(
                StageEvent("windows", pipeline.plan["dta"], "computed")
            )

    n_cold = len([i for i in range(len(requests)) if not cache_hits[i]])
    return GridResult(
        request=grid_request,
        results=results,
        train_sims_skipped=max(0, n_cold - 1),
        eval_sims_skipped=len(requests) - 1,
        control_cache_hits=sum(cache_hits),
        kernel_delta=stats.delta(kernels_before).to_json(),
    )
