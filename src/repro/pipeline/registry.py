"""The backend registry: stage implementations selected by name.

Every stage of the estimation pipeline (netlist build, datapath
training, control DTA, statistical minimum, error model, estimation,
validation) is implemented by one or more *backends* registered here
under ``(stage, name)``.  Callers select implementations by name —
``{"dta": "windowpool", "statmin": "clark"}`` — instead of threading
``if`` ladders through the flow, and new backends plug in with a
decorator instead of another branch:

>>> @REGISTRY.register("dta", "fancy", description="...")
... class FancyDTABackend: ...

This module is intentionally dependency-free (no numpy, no repro
imports) so that low-level modules — ``repro.sta.ssta``,
``repro.dta.algorithm1`` — can consult the *active* backend selection
(:func:`active_backend` / :func:`use_backends`) without import cycles.
Backend classes themselves are registered by :mod:`repro.pipeline.stages`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "BackendInfo",
    "BackendRegistry",
    "REGISTRY",
    "active_backend",
    "use_backends",
]


@dataclass(frozen=True)
class BackendInfo:
    """One registered stage implementation.

    Attributes:
        stage: Stage name (``"dta"``, ``"statmin"``, ...).
        name: Backend name within the stage (``"kernels"``, ...).
        factory: Callable building the backend instance.
        description: One-line human description for ``pipeline inspect``.
        default: Whether this backend is the stage's default.
        cache_id: Identity used in artifact-store keys.  Backends that
            are byte-identical by construction (e.g. the serial and
            pooled executions of the same kernels) share a ``cache_id``
            so a warm store serves either; semantically distinct
            backends (e.g. the reference implementation kept as ground
            truth) get their own.
    """

    stage: str
    name: str
    factory: object
    description: str = ""
    default: bool = False
    cache_id: str = ""

    def __post_init__(self) -> None:
        if not self.cache_id:
            object.__setattr__(self, "cache_id", self.name)


class BackendRegistry:
    """Registry of stage backends, keyed ``(stage, backend name)``."""

    def __init__(self) -> None:
        #: stage -> backend name -> info, in registration order.
        self._stages: dict[str, dict[str, BackendInfo]] = {}
        self._defaults: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        stage: str,
        name: str,
        *,
        description: str = "",
        default: bool = False,
        cache_id: str = "",
    ):
        """Class/function decorator registering a backend factory."""

        def decorate(factory):
            backends = self._stages.setdefault(stage, {})
            if name in backends:
                raise ValueError(
                    f"backend {stage}.{name} is already registered"
                )
            backends[name] = BackendInfo(
                stage=stage,
                name=name,
                factory=factory,
                description=description,
                default=default,
                cache_id=cache_id,
            )
            if default:
                if stage in self._defaults:
                    raise ValueError(
                        f"stage {stage!r} already has a default backend "
                        f"({self._defaults[stage]!r})"
                    )
                self._defaults[stage] = name
            return factory

        return decorate

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def stages(self) -> list[str]:
        """Registered stage names, in registration order."""
        return list(self._stages)

    def backends(self, stage: str) -> list[str]:
        """Backend names available for ``stage``, in registration order."""
        return list(self._require_stage(stage))

    def default(self, stage: str) -> str:
        """The stage's default backend name."""
        self._require_stage(stage)
        try:
            return self._defaults[stage]
        except KeyError:
            raise KeyError(f"stage {stage!r} has no default backend") from None

    def get(self, stage: str, name: str | None = None) -> BackendInfo:
        """The :class:`BackendInfo` for ``stage.name`` (default if None)."""
        backends = self._require_stage(stage)
        if name is None:
            name = self.default(stage)
        try:
            return backends[name]
        except KeyError:
            raise KeyError(
                f"unknown backend {stage}.{name}; "
                f"available: {', '.join(backends)}"
            ) from None

    def create(self, stage: str, name: str | None = None, **kwargs):
        """Instantiate the backend ``stage.name`` (default if None)."""
        return self.get(stage, name).factory(**kwargs)

    def resolve(self, overrides: dict[str, str] | None = None) -> dict[str, str]:
        """A full stage -> backend-name plan: defaults plus ``overrides``."""
        plan = {stage: self.default(stage) for stage in self._stages}
        for stage, name in (overrides or {}).items():
            self.get(stage, name)  # validates both names
            plan[stage] = name
        return plan

    def describe(self) -> list[dict]:
        """One document per stage (the ``pipeline inspect`` payload)."""
        return [
            {
                "stage": stage,
                "default": self._defaults.get(stage),
                "backends": [
                    {
                        "name": info.name,
                        "description": info.description,
                        "cache_id": info.cache_id,
                    }
                    for info in backends.values()
                ],
            }
            for stage, backends in self._stages.items()
        ]

    def _require_stage(self, stage: str) -> dict[str, BackendInfo]:
        try:
            return self._stages[stage]
        except KeyError:
            raise KeyError(
                f"unknown stage {stage!r}; "
                f"registered: {', '.join(self._stages) or '(none)'}"
            ) from None


#: The process-wide registry every stage module registers into.
REGISTRY = BackendRegistry()


# --------------------------------------------------------------------- #
# Active selection (consulted from low-level modules)
# --------------------------------------------------------------------- #

#: Stage -> backend-name overrides active in this process.  Set by
#: :func:`use_backends` around pipeline stage execution; fork-pool
#: workers inherit the parent's selection.
_ACTIVE: dict[str, str] = {}


def active_backend(stage: str, default: str) -> str:
    """The backend name currently active for ``stage``.

    A plain dict lookup with no registry involvement, so hot loops
    (e.g. every ``combine`` call of Algorithm 1) can dispatch on it.
    """
    return _ACTIVE.get(stage, default)


@contextmanager
def use_backends(**selection: str):
    """Activate a stage -> backend selection for the enclosed block.

    >>> with use_backends(statmin="montecarlo"):
    ...     ...  # Algorithm 1 reduces AP sets by Monte Carlo sampling
    """
    previous = dict(_ACTIVE)
    _ACTIVE.update({k: v for k, v in selection.items() if v is not None})
    try:
        yield dict(_ACTIVE)
    finally:
        _ACTIVE.clear()
        _ACTIVE.update(previous)
