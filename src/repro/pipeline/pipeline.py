"""The staged estimation pipeline: composition root of the flow.

:class:`EstimationPipeline` wires the registered stage backends
(:mod:`repro.pipeline.stages`) into the paper's two-phase flow —
training (control characterization + datapath fit) and simulation
(profile, error model, marginal solve, statistical estimate) — with
every stage boundary crossing a typed IR document
(:mod:`repro.pipeline.ir`) and every persistable artifact living in one
content-addressed :class:`~repro.pipeline.store.ArtifactStore`.

Three persisted artifact streams feed the store (their namespaces keep
the on-disk layout of the legacy ``ArtifactCache``):

* ``control`` — the characterized control timing model, keyed on the
  full :class:`~repro.pipeline.ir.ControlInputIR` (period-dependent);
* ``windows`` — period-independent activity traces + path moments,
  keyed on the same IR minus the clock period (frequency-sweep reuse);
* ``datapath`` — the shared datapath timing model, keyed on the
  processor's :class:`~repro.pipeline.ir.DatapathInputIR`.

Store keys additionally fold in the stage name and the selected
backend's ``cache_id``, so a reference run can never serve a kernels
run (or vice versa) — while the ``kernels`` and ``windowpool`` backends,
byte-identical by construction, share entries.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.core.collect import SimulationCollector
from repro.cpu.interpreter import FunctionalSimulator
from repro.cpu.state import MachineState
from repro.dta.windowpool import ActivityCache
from repro.kernels import kernel_stats
from repro.pipeline.ir import (
    ControlInputIR,
    DatapathInputIR,
    ProcessorConfig,
    TrainingArtifacts,
    TrainingSpec,
)
from repro.pipeline.registry import REGISTRY, use_backends
from repro.pipeline.store import ArtifactStore

# Importing the stage modules is what populates REGISTRY.
from repro.pipeline import stages as _stages  # noqa: F401
from repro.pipeline import grid as _grid  # noqa: F401

__all__ = ["EstimationPipeline", "PipelineResult", "StageEvent"]

_UNSET = object()


@dataclass(frozen=True)
class StageEvent:
    """One stage execution record: where its output came from."""

    stage: str
    backend: str
    status: str  # "hit" | "computed" | "provided"
    seconds: float = 0.0

    def to_json(self) -> dict:
        return {
            "stage": self.stage,
            "backend": self.backend,
            "status": self.status,
            "seconds": round(self.seconds, 3),
        }


@dataclass(slots=True)
class PipelineResult:
    """Outcome of one :meth:`EstimationPipeline.execute` call."""

    report: object
    events: list[StageEvent] = field(default_factory=list)
    cache_hit: bool = False
    windows_preloaded: int | None = None
    seed: int = 0
    train_seconds: float = 0.0
    estimate_seconds: float = 0.0
    processor: object = None

    def event(self, stage: str) -> StageEvent | None:
        """The last recorded event for ``stage`` (None if absent)."""
        found = None
        for event in self.events:
            if event.stage == stage:
                found = event
        return found


class EstimationPipeline:
    """The paper's framework as an explicit staged pipeline.

    Args:
        processor: Either a built
            :class:`~repro.core.processor.ProcessorModel`, a picklable
            :class:`~repro.pipeline.ir.ProcessorConfig` recipe, or
            ``None`` (the paper's default configuration).  Only the
            recipe form can key the artifact store — a pre-built
            processor runs storeless.
        backends: Stage -> backend-name overrides (e.g. ``{"dta":
            "reference"}``); unset stages use registry defaults.
        store: The :class:`~repro.pipeline.store.ArtifactStore` to
            persist stage outputs in; defaults to a process-local
            in-memory store when a config is given, and ``None``
            (storeless) otherwise.  Pass ``None`` explicitly to disable.
        n_data_samples: Data-variation sample count used to represent
            the probability random variables.
        window_workers: Fork-pool width for the intra-job window
            fan-out; only honored by the ``dta.windowpool`` backend.
        executor: Window-analysis executor name (``"auto"``,
            ``"local-serial"``, ``"local-fork"``; see
            :mod:`repro.dta.executor`).  Serial-pinned ``dta`` backends
            ignore it.
        activity_cache: Content-addressed window activity cache shared
            by training, on-demand characterization, and breakdowns (a
            fresh one is built when omitted).
    """

    def __init__(
        self,
        processor=None,
        *,
        backends: dict[str, str] | None = None,
        store=_UNSET,
        n_data_samples: int = 128,
        window_workers: int = 1,
        executor: str = "auto",
        activity_cache: ActivityCache | None = None,
    ) -> None:
        from repro.dta.executor import get_executor

        if n_data_samples < 2:
            raise ValueError("n_data_samples must be >= 2")
        if window_workers < 1:
            raise ValueError("window_workers must be >= 1")
        get_executor(executor)  # fail fast on unknown names
        if processor is None:
            processor = ProcessorConfig()
        if isinstance(processor, ProcessorConfig):
            self.config: ProcessorConfig | None = processor
            self._processor = None
        else:
            self.config = None
            self._processor = processor
        if store is _UNSET:
            store = ArtifactStore() if self.config is not None else None
        self.store: ArtifactStore | None = store
        self.n_data_samples = n_data_samples
        self.window_workers = window_workers
        self.executor = executor
        self.activity_cache = (
            activity_cache if activity_cache is not None else ActivityCache()
        )
        self.plan = REGISTRY.resolve(backends)
        self._netlist = REGISTRY.create("netlist", self.plan["netlist"])
        self._datapath = REGISTRY.create("datapath", self.plan["datapath"])
        self._dta = REGISTRY.create(
            "dta",
            self.plan["dta"],
            window_workers=window_workers,
            executor=executor,
        )
        self._errormodel = REGISTRY.create("errormodel", self.plan["errormodel"])
        self._estimate = REGISTRY.create("estimate", self.plan["estimate"])
        self._derived: dict[float, EstimationPipeline] = {}
        self._derived_models: dict[float, object] = {}
        self._family_siblings: dict[str, EstimationPipeline] = {}

    # ------------------------------------------------------------------ #
    # Processor access
    # ------------------------------------------------------------------ #

    @property
    def processor(self):
        """The processor under analysis (built on first use)."""
        if self._processor is None:
            self._processor = self._netlist.build(self.config)
        return self._processor

    def processor_for(self, speculation):
        """The processor at ``speculation`` (derived, shared engines)."""
        if (
            speculation is None
            or speculation == self.processor.speculation
        ):
            return self.processor
        if self.config is not None:
            return self._netlist.derive(self.config, speculation)
        if speculation not in self._derived_models:
            self._derived_models[speculation] = self.processor.derive(
                speculation=speculation
            )
        return self._derived_models[speculation]

    @property
    def core_family_name(self) -> str:
        """The registered core-family name this pipeline targets."""
        if self.config is not None:
            return self.config.core_family
        return self.processor.core_family.name

    def pipeline_for_family(self, core_family: str) -> "EstimationPipeline":
        """This pipeline re-targeted at another registered core family.

        Shares the artifact store and the activity cache — both are
        content-addressed, and every family-tagged IR hashes differently,
        so entries can never collide across families — plus the backend
        plan and execution knobs.  Requires the recipe
        (:class:`ProcessorConfig`) form: a pre-built processor cannot be
        re-targeted.
        """
        if core_family == self.core_family_name:
            return self
        if core_family not in self._family_siblings:
            if self.config is None:
                raise ValueError(
                    f"this pipeline wraps a pre-built "
                    f"{self.core_family_name!r} processor and cannot run "
                    f"{core_family!r} requests; construct it from a "
                    f"ProcessorConfig to enable family dispatch"
                )
            self._family_siblings[core_family] = EstimationPipeline(
                dataclasses.replace(self.config, core_family=core_family),
                backends=self.plan,
                store=self.store,
                n_data_samples=self.n_data_samples,
                window_workers=self.window_workers,
                executor=self.executor,
                activity_cache=self.activity_cache,
            )
        return self._family_siblings[core_family]

    def pipeline_for(self, speculation) -> "EstimationPipeline":
        """This pipeline at a derived operating point.

        Shares the activity cache (stimulus digests are
        period-independent), the artifact store, and the backend plan.
        """
        if (
            speculation is None
            or speculation == self.processor.speculation
        ):
            return self
        if speculation not in self._derived:
            self._derived[speculation] = EstimationPipeline(
                self.processor_for(speculation),
                backends=self.plan,
                store=self.store,
                n_data_samples=self.n_data_samples,
                window_workers=self.window_workers,
                executor=self.executor,
                activity_cache=self.activity_cache,
            )
        return self._derived[speculation]

    # ------------------------------------------------------------------ #
    # Characterizer / window-artifact plumbing (shim + benchmark surface)
    # ------------------------------------------------------------------ #

    def build_characterizer(self, program):
        """A characterizer wired to this pipeline's cache and pool width."""
        with use_backends(**self.plan):
            with self._dta.activation():
                return self._dta.build_characterizer(
                    self.processor, program, self.activity_cache
                )

    def window_doc(self) -> dict:
        """Persistable period-independent window artifacts."""
        return self._dta.window_doc(self.processor, self.activity_cache)

    def preload_windows(self, doc: dict) -> int:
        """Load a :meth:`window_doc` document; returns entries added."""
        return self._dta.preload_windows(
            self.processor, self.activity_cache, doc
        )

    def artifacts_from_doc(self, program, doc: dict) -> TrainingArtifacts:
        """Rebuild :class:`TrainingArtifacts` from a persisted document."""
        with use_backends(**self.plan):
            return self._dta.artifacts_from_doc(
                self.processor, program, self.activity_cache, doc
            )

    def load_artifacts(self, program, path) -> TrainingArtifacts:
        """Reload artifacts persisted by :meth:`TrainingArtifacts.save`."""
        import json

        with open(path) as handle:
            doc = json.load(handle)
        return self.artifacts_from_doc(program, doc)

    # ------------------------------------------------------------------ #
    # Phase 1: training
    # ------------------------------------------------------------------ #

    def train(
        self,
        program,
        setup=None,
        max_instructions: int = 2_000_000,
    ) -> TrainingArtifacts:
        """Characterize the program's control network on a training run."""
        with use_backends(**self.plan):
            return self._dta.train(
                self.processor,
                program,
                self.activity_cache,
                setup=setup,
                max_instructions=max_instructions,
            )

    # ------------------------------------------------------------------ #
    # Phase 2: simulation + estimation
    # ------------------------------------------------------------------ #

    def estimate(
        self,
        program,
        artifacts: TrainingArtifacts,
        setup=None,
        max_instructions: int = 5_000_000,
        reservoir_size: int = 160,
        seed: int = 0,
    ):
        """Estimate the program's error-rate distribution on a dataset."""
        with use_backends(**self.plan):
            with self._dta.activation():
                return self._estimate_body(
                    program,
                    artifacts,
                    setup=setup,
                    max_instructions=max_instructions,
                    reservoir_size=reservoir_size,
                    seed=seed,
                )

    def _estimate_body(
        self,
        program,
        artifacts: TrainingArtifacts,
        *,
        setup,
        max_instructions: int,
        reservoir_size: int,
        seed: int,
    ):
        start = time.perf_counter()
        kernels_before = kernel_stats().snapshot()
        profile, samples = self.collect_evaluation(
            program,
            artifacts.cfg,
            setup=setup,
            max_instructions=max_instructions,
            reservoir_size=reservoir_size,
        )
        return self._finish_estimate(
            program, artifacts, profile, samples,
            seed=seed, start=start, kernels_before=kernels_before,
        )

    @staticmethod
    def collect_evaluation(
        program,
        cfg,
        *,
        setup,
        max_instructions: int,
        reservoir_size: int,
    ):
        """The evaluation-dataset functional run: profile + samples.

        Period-independent (the interpreter knows nothing about timing)
        and deterministic (fixed-seed reservoir), so one collection can
        feed the estimation of every operating point of a grid.
        """
        simulator = FunctionalSimulator(program)
        state = MachineState()
        if setup is not None:
            setup(state)
        collector = SimulationCollector(cfg, reservoir_size=reservoir_size)
        simulator.run(
            state, max_instructions=max_instructions,
            listener=collector.listener,
        )
        return collector.profile(), collector.samples()

    def _finish_estimate(
        self,
        program,
        artifacts: TrainingArtifacts,
        profile,
        samples,
        *,
        seed: int,
        start: float,
        kernels_before,
    ):
        """Estimation downstream of the evaluation run (per point)."""
        from repro.core.results import ErrorRateReport

        cfg = artifacts.cfg
        self._dta.characterize_missing(artifacts, samples)
        conditionals = self._errormodel.conditionals(
            self.processor,
            program,
            cfg,
            artifacts.control_model,
            samples,
            profile,
            n_data_samples=self.n_data_samples,
            seed=seed,
        )
        lam, mixture, stein, chen = self._estimate.distribution(
            cfg, profile, conditionals
        )
        elapsed = time.perf_counter() - start
        kernels = (
            kernel_stats()
            .delta(kernels_before)
            .merge(artifacts.kernel_stats)
            .to_json()
        )
        return ErrorRateReport(
            program=program.name,
            total_instructions=profile.total_instructions,
            static_instructions=len(program),
            basic_blocks=len(cfg),
            characterized_pairs=len(artifacts.control_model),
            lam=lam,
            mixture=mixture,
            stein=stein,
            chen_stein=chen,
            training_seconds=artifacts.training_seconds,
            simulation_seconds=elapsed,
            kernel_stats=kernels,
            training_kernel_stats=artifacts.kernel_stats,
        )

    def estimate_collected(
        self,
        program,
        artifacts: TrainingArtifacts,
        profile,
        samples,
        seed: int = 0,
    ):
        """Estimate from an already-collected evaluation run.

        The grid evaluator's per-point entry: the shared
        :meth:`collect_evaluation` output feeds every operating point,
        and each point runs only the period-dependent tail (on-demand
        characterization, error model, statistical estimate).
        """
        with use_backends(**self.plan):
            with self._dta.activation():
                return self._finish_estimate(
                    program, artifacts, profile, samples,
                    seed=seed,
                    start=time.perf_counter(),
                    kernels_before=kernel_stats().snapshot(),
                )

    # ------------------------------------------------------------------ #
    # Request execution (store-aware)
    # ------------------------------------------------------------------ #

    def run(self, request, artifacts: TrainingArtifacts | None = None):
        """Execute one :class:`~repro.core.request.EstimationRequest`.

        Resolves the workload, trains on the request's training dataset
        (unless pre-trained ``artifacts`` are supplied), and estimates
        on the evaluation dataset; a request carrying a different
        ``speculation`` runs on the derived operating point.  Returns
        the :class:`~repro.core.results.ErrorRateReport` — use
        :meth:`execute` for the store-aware flow with stage telemetry.
        """
        family_pipe = self.pipeline_for_family(request.core_family)
        if family_pipe is not self:
            return family_pipe.run(request, artifacts)
        workload = request.resolve_workload()
        pipe = self.pipeline_for(request.speculation)
        program, train_setup, train_budget = workload.run_spec(
            request.train_scale, seed=request.train_seed
        )
        if artifacts is None:
            artifacts = pipe.train(
                program,
                setup=train_setup,
                max_instructions=(
                    request.train_instructions or train_budget
                ),
            )
        _, eval_setup, eval_budget = workload.run_spec(
            request.eval_scale, seed=request.eval_seed
        )
        return pipe.estimate(
            program,
            artifacts,
            setup=eval_setup,
            max_instructions=request.max_instructions or eval_budget,
            reservoir_size=request.reservoir_size,
            seed=request.resolved_seed(),
        )

    def execute(self, request) -> PipelineResult:
        """Run one request through the store-aware staged flow.

        The store-consulting superset of :meth:`run`: every persistable
        stage output (datapath model, control model, window artifacts)
        is fetched from / written to the :class:`ArtifactStore`, and the
        result carries one :class:`StageEvent` per stage saying whether
        its output was a store ``hit`` or freshly ``computed``.
        """
        family_pipe = self.pipeline_for_family(request.core_family)
        if family_pipe is not self:
            return family_pipe.execute(request)
        events: list[StageEvent] = []
        pipe = self.pipeline_for(request.speculation)
        workload = request.resolve_workload()
        program, train_setup, train_budget = workload.run_spec(
            request.train_scale, seed=request.train_seed
        )
        train_instructions = request.train_instructions or train_budget

        # --- netlist ---------------------------------------------------- #
        t0 = time.perf_counter()
        provided = pipe._processor is not None
        processor = pipe.processor
        events.append(
            StageEvent(
                "netlist",
                self.plan["netlist"],
                "provided" if provided else "computed",
                time.perf_counter() - t0,
            )
        )

        use_store = self.store is not None and self.config is not None
        dta_info = REGISTRY.get("dta", self.plan["dta"])
        spec = TrainingSpec(
            scale=request.train_scale,
            seed=request.train_seed,
            instructions=train_instructions,
        )

        # --- datapath ---------------------------------------------------- #
        t0 = time.perf_counter()
        if use_store:
            datapath_key = self.store.compose_key(
                "datapath",
                REGISTRY.get("datapath", self.plan["datapath"]).cache_id,
                DatapathInputIR.build(self.config).content_hash,
            )
            hit = pipe._datapath.ensure(
                processor, key=datapath_key, store=self.store
            )
        else:
            hit = pipe._datapath.ensure(processor)
        events.append(
            StageEvent(
                "datapath",
                self.plan["datapath"],
                "hit" if hit else "computed",
                time.perf_counter() - t0,
            )
        )

        # --- dta: control + window artifacts ----------------------------- #
        cache_hit = False
        windows_preloaded = None
        artifacts = None
        control_key = windows_key = None
        t0 = time.perf_counter()
        if use_store:
            control_ir = ControlInputIR.build(
                program, self.config, spec,
                clock_period=processor.clock_period,
            )
            control_key = self.store.compose_key(
                "dta", dta_info.cache_id, control_ir.content_hash
            )
            doc = self.store.get_entry("control", control_key)
            if doc is not None:
                artifacts = pipe.artifacts_from_doc(program, doc)
                cache_hit = True
            # Period-independent window artifacts: preload even on a
            # control hit (on-demand characterization during estimation
            # still benefits), and fill the characterization at a *new*
            # clock period entirely from cached activity traces.
            windows_key = self.store.compose_key(
                "dta",
                dta_info.cache_id,
                control_ir.period_independent().content_hash,
            )
            windows_doc = self.store.get_entry("windows", windows_key)
            if windows_doc is not None:
                windows_preloaded = pipe.preload_windows(windows_doc)
                events.append(
                    StageEvent(
                        "windows", self.plan["dta"], "hit",
                        time.perf_counter() - t0,
                    )
                )
        if artifacts is None:
            artifacts = pipe.train(
                program,
                setup=train_setup,
                max_instructions=train_instructions,
            )
            if use_store:
                self.store.put_entry(
                    "control", control_key, artifacts.to_doc()
                )
        train_seconds = time.perf_counter() - t0
        events.append(
            StageEvent(
                "dta",
                self.plan["dta"],
                "hit" if cache_hit else "computed",
                train_seconds,
            )
        )

        # --- errormodel + estimate ---------------------------------------- #
        _, eval_setup, eval_budget = workload.run_spec(
            request.eval_scale, seed=request.eval_seed
        )
        seed = request.resolved_seed()
        t1 = time.perf_counter()
        report = pipe.estimate(
            program,
            artifacts,
            setup=eval_setup,
            max_instructions=request.max_instructions or eval_budget,
            reservoir_size=request.reservoir_size,
            seed=seed,
        )
        estimate_seconds = time.perf_counter() - t1
        events.append(
            StageEvent(
                "estimate", self.plan["estimate"], "computed",
                estimate_seconds,
            )
        )
        if use_store and pipe.activity_cache.dirty:
            self.store.put_entry("windows", windows_key, pipe.window_doc())
            events.append(StageEvent("windows", self.plan["dta"], "computed"))
        return PipelineResult(
            report=report,
            events=events,
            cache_hit=cache_hit,
            windows_preloaded=windows_preloaded,
            seed=seed,
            train_seconds=train_seconds,
            estimate_seconds=estimate_seconds,
            processor=processor,
        )

    def execute_grid(self, requests) -> "object":
        """Run a homogeneous request batch through the batched grid flow.

        ``requests`` must be identical up to ``speculation`` (one
        workload/dataset/budget identity, many operating points); the
        grid evaluator (:mod:`repro.pipeline.grid`) shares every
        period-independent computation across them and returns a
        :class:`~repro.pipeline.grid.GridResult` whose per-point
        reports are byte-identical to scalar :meth:`execute` calls.
        """
        from repro.pipeline.grid import execute_grid

        requests = list(requests)
        if requests:
            families = {r.core_family for r in requests}
            if len(families) > 1:
                raise ValueError(
                    "grid requests must share one core family; got "
                    f"{', '.join(sorted(families))}"
                )
            family_pipe = self.pipeline_for_family(requests[0].core_family)
            if family_pipe is not self:
                return execute_grid(family_pipe, requests)
        return execute_grid(self, requests)

    # ------------------------------------------------------------------ #
    # Validation + diagnostics
    # ------------------------------------------------------------------ #

    def validator(self, **kwargs):
        """The ground-truth validator for this pipeline's processor.

        Shares the activity cache with the estimation flow unless an
        explicit one is passed.
        """
        kwargs.setdefault("activity_cache", self.activity_cache)
        backend = REGISTRY.create("validate", self.plan["validate"])
        return backend.validator(self.processor, **kwargs)

    def instruction_breakdown(
        self,
        program,
        artifacts: TrainingArtifacts,
        setup=None,
        max_instructions: int = 1_000_000,
        seed: int = 0,
    ) -> list[dict]:
        """Per-static-instruction contribution to the expected error count.

        Returns one row per executed instruction, sorted by decreasing
        contribution to lambda: ``{"block", "position", "index",
        "instruction", "executions", "mean_probability",
        "expected_errors", "share"}`` — the view an architect uses to
        locate *where* a kernel is vulnerable.
        """
        from repro.cfg.marginal import MarginalSolver

        with use_backends(**self.plan):
            with self._dta.activation():
                cfg = artifacts.cfg
                simulator = FunctionalSimulator(program)
                state = MachineState()
                if setup is not None:
                    setup(state)
                collector = SimulationCollector(cfg)
                simulator.run(
                    state, max_instructions=max_instructions,
                    listener=collector.listener,
                )
                profile = collector.profile()
                samples = collector.samples()
                self._dta.characterize_missing(artifacts, samples)
                conditionals = self._errormodel.conditionals(
                    self.processor,
                    program,
                    cfg,
                    artifacts.control_model,
                    samples,
                    None,
                    n_data_samples=self.n_data_samples,
                    seed=seed,
                )
                marginals, _ = MarginalSolver(cfg, profile).solve(conditionals)
        rows: list[dict] = []
        lam_total = 0.0
        for bid, probs in marginals.items():
            executions = int(profile.block_counts[bid])
            block = cfg.block(bid)
            for k in range(probs.shape[0]):
                p_mean = float(probs[k].mean())
                contribution = executions * p_mean
                lam_total += contribution
                rows.append(
                    {
                        "block": bid,
                        "position": k,
                        "index": block.start + k,
                        "instruction": str(program[block.start + k]),
                        "executions": executions,
                        "mean_probability": p_mean,
                        "expected_errors": contribution,
                    }
                )
        for row in rows:
            row["share"] = (
                row["expected_errors"] / lam_total if lam_total > 0 else 0.0
            )
        rows.sort(key=lambda r: -r["expected_errors"])
        return rows

    def describe(self) -> dict:
        """The resolved stage graph + store state (``pipeline inspect``)."""
        from repro.core.family import available_core_families

        return {
            "schema": "repro.pipeline/1",
            "plan": dict(self.plan),
            "core_family": self.core_family_name,
            "core_families": list(available_core_families()),
            "stages": REGISTRY.describe(),
            "store": self.store.describe() if self.store is not None else None,
        }
