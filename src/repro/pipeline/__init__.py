"""The staged estimation pipeline.

Public surface:

* :data:`REGISTRY`, :func:`active_backend`, :func:`use_backends` — the
  backend registry and process-wide selection;
* :class:`ArtifactStore` / :func:`stable_digest` — the unified
  content-addressed artifact store;
* the typed inter-stage IR (:mod:`repro.pipeline.ir`);
* :class:`EstimationPipeline` — the composition root.

Attributes resolve lazily (PEP 562): importing ``repro.pipeline`` for
:func:`active_backend` from a low-level module (e.g. the SSTA layer)
must not drag in numpy-heavy stage implementations.
"""

from __future__ import annotations

_REGISTRY_EXPORTS = {
    "REGISTRY",
    "BackendInfo",
    "BackendRegistry",
    "active_backend",
    "use_backends",
}
_STORE_EXPORTS = {"ArtifactStore", "stable_digest"}
_IR_EXPORTS = {
    "CORRECTION_SCHEMES",
    "ProcessorConfig",
    "ProgramIR",
    "TrainingSpec",
    "ControlInputIR",
    "DatapathInputIR",
    "ControlArtifactIR",
    "WindowArtifactIR",
    "DatapathArtifactIR",
    "TrainingArtifacts",
    "program_fingerprint",
    "control_cache_key",
    "window_cache_key",
    "datapath_cache_key",
}
_PIPELINE_EXPORTS = {"EstimationPipeline", "PipelineResult", "StageEvent"}

__all__ = sorted(
    _REGISTRY_EXPORTS | _STORE_EXPORTS | _IR_EXPORTS | _PIPELINE_EXPORTS
)


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from repro.pipeline import registry as module
    elif name in _STORE_EXPORTS:
        from repro.pipeline import store as module
    elif name in _IR_EXPORTS:
        from repro.pipeline import ir as module
    elif name in _PIPELINE_EXPORTS:
        from repro.pipeline import pipeline as module
    else:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    return getattr(module, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
