"""Vectorized DTS kernel layer: runtime configuration and counters.

The hot loops of a characterization run — gate-by-gate logic simulation,
per-AP recomputation of path moments, and pairwise covariance assembly
for every Clark reduction — are replaced by batched numpy kernels (see
``LevelizedSimulator``, ``StageDTSAnalyzer``, and
``ProcessVariationModel.path_cov_matrix``).  This module holds the two
cross-cutting pieces:

* :class:`KernelConfig` — process-wide switches that select between the
  vectorized kernels and the straight-line reference implementations.
  The reference paths are kept both as ground truth for property tests
  and as the baseline the ``benchmarks/test_kernels.py`` microbenchmark
  measures speedups against.
* :class:`KernelStats` — cheap counters (simulated cycle-gates, Clark
  reductions performed vs. memo hits, covariance cells computed)
  threaded through :class:`~repro.runner.engine.RunSummary` and the
  report ``timing`` section so the speedup is measured, not asserted.

Both are per-process globals: pool workers each carry their own copy, and
the engine merges worker-side snapshots into the run summary.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields, replace

__all__ = [
    "KernelConfig",
    "KernelStats",
    "kernel_config",
    "configure_kernels",
    "kernel_stats",
]


@dataclass(frozen=True, slots=True)
class KernelConfig:
    """Process-wide kernel-layer switches.

    Attributes:
        level_grouped_sim: Evaluate the combinational fabric with one
            vectorized op per (level, gate-type) group instead of a
            per-gate Python loop.
        combine_memo: Memoize :meth:`StageDTSAnalyzer.combine` results on
            (mode, clock period, AP path-id tuple) so repeated AP sets
            across cycles and (block, edge) characterizations reduce
            exactly once.
        precomputed_cov: Serve path moments and pairwise path covariances
            from the analyzer's precomputed registry/cache instead of
            recomputing them per combine call.
        batched_ap_select: Select activated paths for a whole stage with
            one gather + segmented rank-minimum over all endpoints per
            :meth:`StageDTSAnalyzer.ap_trace` call, instead of a Python
            loop over endpoints and cycles.
        scalar_norm: Evaluate the scalar standard-normal pdf/cdf inside
            each Clark reduction step directly (``exp``/``ndtr``) instead
            of through the ``scipy.stats`` distribution machinery.  The
            values are bitwise identical; only the per-call argument
            validation and broadcasting overhead is skipped.
        stimulus_cache: Memoize per-stage control-bit patterns and operand
            bit decompositions in :class:`StimulusEncoder`, and scatter
            them through precomputed source-position index arrays.
        activity_cache: Serve window activity traces from the
            content-addressed :class:`~repro.dta.windowpool.ActivityCache`
            (keyed on a hash of the encoded stimulus) instead of
            re-running the logic simulation for every occurrence of the
            same window.
    """

    level_grouped_sim: bool = True
    combine_memo: bool = True
    precomputed_cov: bool = True
    batched_ap_select: bool = True
    scalar_norm: bool = True
    stimulus_cache: bool = True
    activity_cache: bool = True

    @classmethod
    def reference(cls) -> "KernelConfig":
        """The pre-kernel-layer behaviour (every switch off)."""
        return cls(**{f.name: False for f in fields(cls)})

    @classmethod
    def named(cls, profile: str) -> "KernelConfig":
        """A configuration by profile name.

        ``"kernels"`` is the fully vectorized default, ``"reference"``
        the pre-kernel ground truth — the same identities the pipeline's
        ``dta`` backends carry as their ``cache_id``.
        """
        if profile == "kernels":
            return cls()
        if profile == "reference":
            return cls.reference()
        raise ValueError(
            f"unknown kernel profile {profile!r}; "
            f"known: kernels, reference"
        )

    def to_overrides(self) -> dict[str, bool]:
        """This configuration as ``configure_kernels`` keyword overrides."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


_CONFIG = KernelConfig()


def kernel_config() -> KernelConfig:
    """The active (process-wide) kernel configuration."""
    return _CONFIG


@contextmanager
def configure_kernels(**overrides):
    """Temporarily override kernel switches (testing / benchmarking).

    >>> with configure_kernels(combine_memo=False):
    ...     ...  # runs with memoization disabled

    Pass ``reference=True`` to switch every kernel off at once.
    """
    global _CONFIG
    previous = _CONFIG
    if overrides.pop("reference", False):
        base = KernelConfig.reference()
    else:
        base = previous
    _CONFIG = replace(base, **overrides)
    try:
        yield _CONFIG
    finally:
        _CONFIG = previous


@dataclass(slots=True)
class KernelStats:
    """Counters for the kernel layer's hot paths (one per process).

    Attributes:
        sim_calls: Number of :meth:`LevelizedSimulator.evaluate` calls.
        sim_cycle_gates: Combinational gate evaluations performed, summed
            as (cycles x combinational gates) per call.
        flushed_state_reuses: ``activity()`` calls that reused the cached
            zero-stimulus settled state instead of re-simulating it.
        combine_calls: Non-empty ``combine()`` invocations.
        combine_memo_hits: Of those, how many were served from the memo.
        clark_reductions: Pairwise Clark reductions actually performed.
        cov_cells_computed: Pairwise path-covariance cells computed
            (blocked precompute plus lazy cross-endpoint fills).
        cov_cache_hits: Covariance cells served from the cache.
        activity_cache_hits: Window activity traces served from the
            content-addressed :class:`ActivityCache` instead of simulated.
        activity_cache_misses: Activity-cache lookups that fell through
            to the logic simulator.
        windows_reused: Of the activity-cache hits, how many were served
            from entries preloaded out of a persisted window artifact
            (the period-sweep reuse path).
        pool_tasks: Window-analysis tasks executed through
            :class:`~repro.dta.windowpool.WindowAnalysisPool` (serial or
            parallel).
        pool_task_ms: Total task wall time in milliseconds, summed over
            pool tasks (an integer so worker-side snapshots merge).
            ``pool_task_ms / pool_tasks`` is the measured per-task cost
            the adaptive executor's cost model feeds on.
        pool_maps_serial: ``map`` calls that ran in-process.
        pool_maps_forked: ``map`` calls that ran on the fork pool.
        pool_maps_degraded: Of the serial maps, how many were a
            parallel-capable request degraded by the executor (CPU
            budget, cost model, or fork safety).
        pool_chunks: Chunked task batches dispatched to fork workers.
        pool_shm_bytes: Worker->parent activity-trace bytes handed off
            through ``multiprocessing.shared_memory`` instead of the
            result pipe.
        grid_points: Operating points evaluated through the batched
            grid path (one per point per grid pass).
        grid_clark_reductions: Pairwise Clark reductions executed inside
            period-axis-batched chains.  Each vectorized chain step
            reduces every period at once but is counted once per period
            so the counter stays comparable to ``clark_reductions``.
        grid_reuse_hits: Artifacts the grid pass served from shared
            state instead of recomputing per point — combine-memo hits
            inside batched combines plus per-point control artifacts
            served from the store.
    """

    sim_calls: int = 0
    sim_cycle_gates: int = 0
    flushed_state_reuses: int = 0
    combine_calls: int = 0
    combine_memo_hits: int = 0
    clark_reductions: int = 0
    cov_cells_computed: int = 0
    cov_cache_hits: int = 0
    activity_cache_hits: int = 0
    activity_cache_misses: int = 0
    windows_reused: int = 0
    pool_tasks: int = 0
    pool_task_ms: int = 0
    pool_maps_serial: int = 0
    pool_maps_forked: int = 0
    pool_maps_degraded: int = 0
    pool_chunks: int = 0
    pool_shm_bytes: int = 0
    grid_points: int = 0
    grid_clark_reductions: int = 0
    grid_reuse_hits: int = 0

    def snapshot(self) -> "KernelStats":
        """An independent copy of the current counter values."""
        return KernelStats(**self.to_json())

    def delta(self, since: "KernelStats") -> "KernelStats":
        """Counters accumulated after the ``since`` snapshot was taken."""
        return KernelStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "KernelStats | dict | None") -> "KernelStats":
        """Add another stats object (or its JSON form) into this one."""
        if other is None:
            return self
        doc = other if isinstance(other, dict) else other.to_json()
        for name, value in doc.items():
            setattr(self, name, getattr(self, name) + int(value))
        return self

    def to_json(self) -> dict:
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def aggregate(cls, docs) -> "KernelStats":
        """Sum a sequence of stats documents (``None`` entries skipped)."""
        total = cls()
        for doc in docs:
            total.merge(doc)
        return total


_STATS = KernelStats()


def kernel_stats() -> KernelStats:
    """The process-wide kernel counters (mutated in place by the kernels)."""
    return _STATS
